package tetris

// This file preserves the pre-bitmap estimator — the run-length
// slotList bins with array-of-structs machine.AtomicOp segments —
// exactly as it ran in production, renamed rl*. It is the baseline of
// BenchmarkTetrisEstimate (the ≥2× speedup gate is measured against it)
// and the reference of the estimator differential suite, which pins the
// bitmap/SoA kernel byte-identical to it over random blocks, machines,
// and options.

import (
	"fmt"
	"sync"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
	"perfpredict/internal/source"
)

type rlScratch struct {
	mach   *machine.Machine
	machFP source.Fingerprint
	inst   []machine.UnitInstance
	byKind map[machine.UnitKind][]int
	place  []int
	finish []int
	b      rlBins
}

var rlPool = sync.Pool{New: func() any { return new(rlScratch) }}

// rlEstimate is the retired run-length implementation of Estimate.
func rlEstimate(m *machine.Machine, b *ir.Block, opt Options) (Result, error) {
	sc := rlPool.Get().(*rlScratch)
	defer rlPool.Put(sc)
	bins := sc.prepare(m, opt)
	deps := b.Deps(opt.MayAlias)
	sc.place = resetInts(sc.place, len(b.Instrs))
	sc.finish = resetInts(sc.finish, len(b.Instrs))
	place, finish := sc.place, sc.finish
	maxFinish := 0
	for i, in := range b.Instrs {
		seq, err := m.Lookup(in.Op)
		if err != nil {
			return Result{}, err
		}
		ready, dataReady := 0, 0
		if !opt.IgnoreDeps {
			for _, j := range deps[i] {
				if b.Instrs[j].Op.IsMem() {
					if finish[j] > ready {
						ready = finish[j]
					}
				} else if finish[j] > dataReady {
					dataReady = finish[j]
				}
			}
		}
		if !in.Op.IsStore() && dataReady > ready {
			ready = dataReady
		}
		start, end, err := bins.place(seq, ready)
		if err != nil {
			return Result{}, fmt.Errorf("instr %d (%s): %w", i, in, err)
		}
		if in.Op.IsStore() && dataReady+1 > end {
			end = dataReady + 1
		}
		place[i] = start
		finish[i] = end
		if end > maxFinish {
			maxFinish = end
		}
	}
	res := Result{PlaceTime: append([]int(nil), place...)}
	res.Start, res.End = bins.extent()
	if maxFinish > res.End {
		res.End = maxFinish
	}
	if res.End > res.Start {
		res.Cost = res.End - res.Start
	}
	res.Shape = bins.costBlock(res.Start, res.End)
	return res, nil
}

func (sc *rlScratch) prepare(m *machine.Machine, opt Options) *rlBins {
	if sc.mach != m || len(sc.inst) == 0 {
		fp := m.Fingerprint()
		if len(sc.inst) == 0 || fp != sc.machFP {
			sc.inst = m.Units()
			sc.byKind = make(map[machine.UnitKind][]int, 4)
			for i, u := range sc.inst {
				sc.byKind[u.Kind] = append(sc.byKind[u.Kind], i)
			}
			sc.b.slots = make([]slotList, len(sc.inst))
			sc.b.latEnd = make([]int, len(sc.inst))
			sc.b.used = make([]bool, len(sc.inst))
			sc.b.chosen = sc.b.chosen[:0]
		}
		sc.mach, sc.machFP = m, fp
	}
	b := &sc.b
	b.opt = opt
	b.inst, b.byKind = sc.inst, sc.byKind
	for i := range b.slots {
		b.slots[i].reset(64)
		b.latEnd[i] = 0
		b.used[i] = false
	}
	b.dispatch = b.dispatch[:0]
	b.top = 0
	b.haveOcc = false
	b.width = m.DispatchWidth
	if opt.DispatchWidth > 0 {
		b.width = opt.DispatchWidth
	}
	return b
}

type rlBins struct {
	opt      Options
	inst     []machine.UnitInstance
	byKind   map[machine.UnitKind][]int
	slots    []slotList
	latEnd   []int
	dispatch []int
	top      int
	haveOcc  bool
	width    int
	chosen   []int
	used     []bool
}

func (b *rlBins) dispatchAt(t int) int {
	if t < len(b.dispatch) {
		return b.dispatch[t]
	}
	return 0
}

func (b *rlBins) incDispatch(t int) {
	for len(b.dispatch) <= t {
		b.dispatch = append(b.dispatch, 0)
	}
	b.dispatch[t]++
}

func (b *rlBins) floor() int {
	if b.opt.FocusSpan <= 0 || !b.haveOcc {
		return 0
	}
	f := b.top - b.opt.FocusSpan
	if f < 0 {
		f = 0
	}
	return f
}

func (b *rlBins) place(seq []machine.AtomicOp, ready int) (start, end int, err error) {
	cur := ready
	start = -1
	for _, a := range seq {
		t, err := b.placeOne(a, cur)
		if err != nil {
			return 0, 0, err
		}
		if start == -1 {
			start = t
		}
		cur = t + a.Latency()
	}
	if start == -1 {
		start = ready
		cur = ready
	}
	return start, cur, nil
}

func (b *rlBins) placeOne(a machine.AtomicOp, ready int) (int, error) {
	t := ready
	if f := b.floor(); t < f {
		t = f
	}
	const maxIter = 1 << 20
	for iter := 0; iter < maxIter; iter++ {
		chosen, tNext, ok := b.tryFit(a, t)
		if !ok {
			t = tNext
			continue
		}
		if b.width > 0 && b.dispatchAt(t) >= b.width {
			t++
			continue
		}
		for si, seg := range a.Segments {
			pipe := chosen[si]
			if seg.Noncov > 0 {
				b.slots[pipe].occupy(t+seg.Start, seg.Noncov)
			}
			if e := t + seg.End(); e > b.latEnd[pipe] {
				b.latEnd[pipe] = e
			}
			if occTop := t + seg.Start + seg.Noncov; seg.Noncov > 0 && occTop > b.top {
				b.top = occTop
			}
		}
		if a.Latency() > 0 || len(a.Segments) > 0 {
			b.haveOcc = true
		}
		b.incDispatch(t)
		return t, nil
	}
	return 0, fmt.Errorf("tetris: no placement found for %s", a.Name)
}

func (b *rlBins) tryFit(a machine.AtomicOp, t int) (chosen []int, tNext int, ok bool) {
	if cap(b.chosen) < len(a.Segments) {
		b.chosen = make([]int, len(a.Segments))
	}
	chosen = b.chosen[:len(a.Segments)]
	for i := range b.used {
		b.used[i] = false
	}
	bump := t + 1
	for si, seg := range a.Segments {
		pipes := b.byKind[seg.Unit]
		found := -1
		bestNext := -1
		for _, p := range pipes {
			if b.used[p] {
				continue
			}
			if seg.Noncov == 0 || b.slots[p].free(t+seg.Start, seg.Noncov) {
				found = p
				break
			}
			nf := b.slots[p].nextFit(t+seg.Start, seg.Noncov) - seg.Start
			if bestNext == -1 || nf < bestNext {
				bestNext = nf
			}
		}
		if found == -1 {
			if bestNext > bump {
				bump = bestNext
			}
			return nil, bump, false
		}
		b.used[found] = true
		chosen[si] = found
	}
	return chosen, 0, true
}

func (b *rlBins) extent() (lo, hi int) {
	lo, hi = -1, 0
	for i := range b.slots {
		f, _ := b.slots[i].extent()
		if f >= 0 && (lo == -1 || f < lo) {
			lo = f
		}
		if b.latEnd[i] > hi {
			hi = b.latEnd[i]
		}
	}
	if lo == -1 {
		lo = 0
	}
	return lo, hi
}

func (b *rlBins) costBlock(lo, hi int) CostBlock {
	cb := CostBlock{
		Height: hi - lo,
		First:  map[machine.UnitKind]int{},
		Last:   map[machine.UnitKind]int{},
		Busy:   map[machine.UnitKind]int{},
	}
	for i, u := range b.inst {
		f, l := b.slots[i].extent()
		if f < 0 {
			continue
		}
		rf, rl := f-lo, l-lo
		if cur, ok := cb.First[u.Kind]; !ok || rf < cur {
			cb.First[u.Kind] = rf
		}
		if cur, ok := cb.Last[u.Kind]; !ok || rl > cur {
			cb.Last[u.Kind] = rl
		}
		cb.Busy[u.Kind] += b.slots[i].filledCount(hi)
	}
	return cb
}
