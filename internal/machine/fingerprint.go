package machine

import (
	"sort"

	"perfpredict/internal/source"
)

// Fingerprint returns a 128-bit content hash of the machine
// description: unit inventory, dispatch width, feature flags, and the
// complete atomic-operation cost table, all in canonical order. Two
// machines hash equal iff they describe the same target — regardless of
// how they were constructed (hand-coded, spec-loaded, or mutated) and
// of where they live in memory.
//
// The fingerprint is the machine's identity everywhere costs are
// memoized: the straight-line segment cache and the nest-level cost
// cache (package aggregate) mix it into their keys, and the tetris and
// pipesim scratch pools use it to decide whether machine-derived
// tables may be reused. Keying on content rather than name or pointer
// means two targets that share a name but differ in even one segment
// can never alias each other's cache entries, while content-identical
// machines built by separate registry lookups share freely.
//
// The hash is the two-lane FNV scheme of source.Fingerprint; the
// "machine/v1" tag domain-separates it from AST fingerprints.
func (m *Machine) Fingerprint() source.Fingerprint {
	fp := source.Fingerprint{}.MixString("machine/v1").MixString(m.Name)
	fp = fp.MixUint64(uint64(m.DispatchWidth))
	var flags uint64
	if m.HasFMA {
		flags = 1
	}
	fp = fp.MixUint64(flags)
	fp = fp.MixUint64(uint64(int64(m.LoadsPerStore)))
	fp = fp.MixUint64(uint64(int64(m.BranchCost)))

	// The memory hierarchy is mixed only when declared, so machines
	// without one keep their historical fingerprints (and their warm
	// cache entries), while two machines that differ only in the
	// hierarchy can never alias.
	if h := m.Memory; h != nil {
		fp = fp.MixString("memory/v1").MixUint64(uint64(int64(h.ElemBytes)))
		fp = fp.MixUint64(uint64(len(h.Levels)))
		for _, l := range h.Levels {
			fp = fp.MixString(l.Name).
				MixUint64(uint64(l.SizeBytes)).
				MixUint64(uint64(l.LineBytes)).
				MixUint64(uint64(int64(l.Assoc))).
				MixUint64(uint64(l.MissPenalty))
		}
		if t := h.TLB; t != nil {
			fp = fp.MixString("tlb").
				MixUint64(uint64(t.PageBytes)).
				MixUint64(uint64(t.Entries)).
				MixUint64(uint64(int64(t.Assoc))).
				MixUint64(uint64(t.MissPenalty))
		}
	}

	kinds := make([]string, 0, len(m.UnitCounts))
	for k := range m.UnitCounts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	fp = fp.MixUint64(uint64(len(kinds)))
	for _, k := range kinds {
		fp = fp.MixString(k).MixUint64(uint64(int64(m.UnitCounts[UnitKind(k)])))
	}

	names := make([]string, 0, len(m.Table))
	byName := make(map[string][]AtomicOp, len(m.Table))
	for op, seq := range m.Table {
		n := op.String()
		names = append(names, n)
		byName[n] = seq
	}
	sort.Strings(names)
	fp = fp.MixUint64(uint64(len(names)))
	for _, n := range names {
		fp = fp.MixString(n)
		seq := byName[n]
		fp = fp.MixUint64(uint64(len(seq)))
		for _, a := range seq {
			fp = fp.MixString(a.Name).MixUint64(uint64(len(a.Segments)))
			for _, s := range a.Segments {
				fp = fp.MixString(string(s.Unit)).
					MixUint64(uint64(int64(s.Start))).
					MixUint64(uint64(int64(s.Noncov))).
					MixUint64(uint64(int64(s.Cov)))
			}
		}
	}
	return fp
}
