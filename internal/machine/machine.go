// Package machine describes target architectures for the cost model of
// Wang (PLDI 1994, §2.1–2.2): functional units, atomic operations with
// per-unit *noncoverable* and *coverable* cost segments, and the atomic
// operation mapping + cost table that together make the model portable
// ("adding a new architecture … is a matter of defining the atomic
// operation mapping and the atomic operation cost table").
package machine

import (
	"fmt"
	"sort"

	"perfpredict/internal/ir"
)

// UnitKind names a class of functional unit.
type UnitKind string

// The unit kinds of the paper's Figure 3 (IBM POWER): fixed-point unit
// (which also performs loads/stores and address generation), floating
// point unit, branch unit, and condition-register logic unit.
const (
	FXU UnitKind = "FXU"
	FPU UnitKind = "FPU"
	BRU UnitKind = "BranchU"
	CRU UnitKind = "CR-LogicU"
	// UNI is the single unit of a conventional scalar machine.
	UNI UnitKind = "U"
)

// Segment is one unit's share of an atomic operation's cost object
// (Figure 2): at Start cycles after the operation begins, the unit is
// exclusively busy for Noncov cycles, followed by Cov cycles during
// which an independent operation may already use the unit but a
// dependent one must still wait.
type Segment struct {
	Unit   UnitKind
	Start  int
	Noncov int
	Cov    int
}

// End returns the cycle (relative to operation start) at which the
// segment's full effect — including coverable latency — ends.
func (s Segment) End() int { return s.Start + s.Noncov + s.Cov }

// AtomicOp is a costed low-level machine operation.
type AtomicOp struct {
	Name     string
	Segments []Segment
}

// Latency returns the number of cycles after issue until a dependent
// operation may start (the "filter" height of the cost object).
func (a AtomicOp) Latency() int {
	l := 0
	for _, s := range a.Segments {
		if e := s.End(); e > l {
			l = e
		}
	}
	return l
}

// Occupancy returns the total exclusive (noncoverable) cycles over all
// units — the footprint a conventional op-count model would charge.
func (a AtomicOp) Occupancy() int {
	o := 0
	for _, s := range a.Segments {
		o += s.Noncov
	}
	return o
}

// Units returns the distinct unit kinds the op occupies.
func (a AtomicOp) Units() []UnitKind {
	seen := map[UnitKind]bool{}
	var out []UnitKind
	for _, s := range a.Segments {
		if !seen[s.Unit] {
			seen[s.Unit] = true
			out = append(out, s.Unit)
		}
	}
	return out
}

// Machine is an architecture description. The cost model, the
// instruction translation module and the reference pipeline simulator
// all read the same table, but use it independently.
type Machine struct {
	Name string
	// UnitCounts gives the number of identical pipes of each kind
	// ("for architectures with multiple operation pipes, more bins can
	// be added").
	UnitCounts map[UnitKind]int
	// DispatchWidth bounds how many operations may begin per cycle.
	DispatchWidth int
	// Table is the atomic operation mapping: one basic operation may
	// expand to several atomic operations (executed in sequence).
	Table map[ir.Op][]AtomicOp
	// HasFMA reports whether the architecture supports fused
	// multiply-add; the specialization mapping only emits OpFMA when
	// set (§2.2.1: "they are mapped to low level atomic operations if
	// the architecture supports them").
	HasFMA bool
	// LoadsPerStore is the register-pressure heuristic constant K: the
	// translation module "forces a store after certain number of
	// loads" to simulate the effect of the limited register file
	// (§2.2.1). Zero disables the heuristic.
	LoadsPerStore int
	// BranchCost is the estimated uncovered branch cost c_br used by
	// cost aggregation when the branch shape test says the branch is
	// not hidden.
	BranchCost int
	// Memory is the declared cache/TLB hierarchy, or nil when the
	// machine prices every load as an L1 hit. When set, aggregation
	// folds the symbolic §2.3 miss cost into each top-level nest.
	Memory *MemoryHierarchy
}

// Units returns the unit instances of the machine in a stable order,
// e.g. FXU#0, FXU#1, FPU#0…
func (m *Machine) Units() []UnitInstance {
	kinds := make([]UnitKind, 0, len(m.UnitCounts))
	for k := range m.UnitCounts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var out []UnitInstance
	for _, k := range kinds {
		for i := 0; i < m.UnitCounts[k]; i++ {
			out = append(out, UnitInstance{k, i})
		}
	}
	return out
}

// UnitInstance is one physical pipe.
type UnitInstance struct {
	Kind  UnitKind
	Index int
}

func (u UnitInstance) String() string { return fmt.Sprintf("%s#%d", u.Kind, u.Index) }

// Lookup returns the atomic expansion of a basic operation.
func (m *Machine) Lookup(op ir.Op) ([]AtomicOp, error) {
	seq, ok := m.Table[op]
	if !ok {
		return nil, fmt.Errorf("machine %s: no atomic mapping for %s", m.Name, op)
	}
	return seq, nil
}

// Latency returns the total dependent-visible latency of a basic
// operation (sum over its atomic expansion, which executes serially).
func (m *Machine) Latency(op ir.Op) int {
	seq, err := m.Lookup(op)
	if err != nil {
		return 1
	}
	l := 0
	for _, a := range seq {
		l += a.Latency()
	}
	return l
}

// Occupancy returns the total exclusive unit cycles of a basic op.
func (m *Machine) Occupancy(op ir.Op) int {
	seq, err := m.Lookup(op)
	if err != nil {
		return 1
	}
	o := 0
	for _, a := range seq {
		o += a.Occupancy()
	}
	return o
}

// Validate checks internal consistency: every mapped op references only
// units the machine has, with sane segment values, and every basic
// operation has a mapping.
func (m *Machine) Validate() error {
	if m.DispatchWidth <= 0 {
		return fmt.Errorf("machine %s: dispatch width %d", m.Name, m.DispatchWidth)
	}
	if len(m.UnitCounts) == 0 {
		return fmt.Errorf("machine %s: no units", m.Name)
	}
	for k, c := range m.UnitCounts {
		if c <= 0 {
			return fmt.Errorf("machine %s: unit %s count %d", m.Name, k, c)
		}
	}
	if m.Memory != nil {
		if err := SpecOfHierarchy(m.Memory).Validate(m.Name); err != nil {
			return err
		}
	}
	for _, op := range ir.AllOps() {
		seq, ok := m.Table[op]
		if !ok {
			return fmt.Errorf("machine %s: missing mapping for %s", m.Name, op)
		}
		if len(seq) == 0 {
			return fmt.Errorf("machine %s: %s maps to no atomic operations", m.Name, op)
		}
		for _, a := range seq {
			if len(a.Segments) == 0 {
				return fmt.Errorf("machine %s: %s/%s occupies no units", m.Name, op, a.Name)
			}
			perKind := map[UnitKind]int{}
			for i, s := range a.Segments {
				if _, ok := m.UnitCounts[s.Unit]; !ok {
					return fmt.Errorf("machine %s: %s references unknown unit %s", m.Name, op, s.Unit)
				}
				if s.Start < 0 {
					return fmt.Errorf("machine %s: %s has negative start in segment %+v", m.Name, op, s)
				}
				if s.Noncov < 0 || s.Cov < 0 || s.Noncov+s.Cov == 0 {
					return fmt.Errorf("machine %s: %s has bad segment %+v", m.Name, op, s)
				}
				// Exclusive-busy intervals of one atomic op must not
				// overlap on a unit: the op cannot occupy the same pipe
				// twice in the same cycle.
				for _, prev := range a.Segments[:i] {
					if prev.Unit == s.Unit &&
						s.Start < prev.Start+prev.Noncov && prev.Start < s.Start+s.Noncov {
						return fmt.Errorf("machine %s: %s/%s has overlapping segments on %s", m.Name, op, a.Name, s.Unit)
					}
				}
				// Each segment of one atomic operation occupies its own
				// pipe; demanding more pipes of a kind than exist makes
				// the operation unplaceable.
				perKind[s.Unit]++
				if perKind[s.Unit] > m.UnitCounts[s.Unit] {
					return fmt.Errorf("machine %s: %s/%s needs %d pipes of %s, machine has %d",
						m.Name, op, a.Name, perKind[s.Unit], s.Unit, m.UnitCounts[s.Unit])
				}
			}
		}
	}
	return nil
}
