package machine

import (
	"embed"
	"fmt"
	"io/fs"
)

// The builtin targets ship as data, not code: each is a spec file
// embedded into the binary and registered at init. The seed hand-coded
// constructors (Reference* in power1.go) are retained as oracles; the
// differential tests prove the loaded tables identical to them.
//
//go:embed specs/*.json
var builtinSpecs embed.FS

func init() {
	if err := RegisterEmbedded(Default); err != nil {
		panic(err)
	}
}

// RegisterEmbedded loads every embedded builtin spec into r. It is
// exported so tests and fresh registries can mirror the default
// catalog.
func RegisterEmbedded(r *Registry) error {
	entries, err := fs.ReadDir(builtinSpecs, "specs")
	if err != nil {
		return fmt.Errorf("machine builtins: %w", err)
	}
	for _, e := range entries {
		data, err := fs.ReadFile(builtinSpecs, "specs/"+e.Name())
		if err != nil {
			return fmt.Errorf("machine builtins: %s: %w", e.Name(), err)
		}
		s, err := ParseSpec(data)
		if err != nil {
			return fmt.Errorf("machine builtins: %s: %w", e.Name(), err)
		}
		if err := r.Register(s); err != nil {
			return fmt.Errorf("machine builtins: %s: %w", e.Name(), err)
		}
	}
	return nil
}

// EmbeddedSpecs returns the raw embedded builtin spec files, keyed by
// file name — the artifacts CI's spec-validation step checks.
func EmbeddedSpecs() (map[string][]byte, error) {
	entries, err := fs.ReadDir(builtinSpecs, "specs")
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		data, err := fs.ReadFile(builtinSpecs, "specs/"+e.Name())
		if err != nil {
			return nil, err
		}
		out[e.Name()] = data
	}
	return out, nil
}

// mustLookup resolves a builtin by name; the embedded specs make
// failure a build artifact bug, not a runtime condition.
func mustLookup(name string) *Machine {
	m, err := Lookup(name)
	if err != nil {
		panic(fmt.Sprintf("machine: builtin %s: %v", name, err))
	}
	return m
}

// NewPOWER1 returns the IBM RS/6000 POWER target, loaded from its
// embedded spec (specs/power1.json). See ReferencePOWER1 for the cost
// rationale; the differential tests keep the two identical.
func NewPOWER1() *Machine { return mustLookup("POWER1") }

// NewSuperScalar2 returns the wider hypothetical superscalar (two
// fixed-point and two floating-point pipes), loaded from its embedded
// spec.
func NewSuperScalar2() *Machine { return mustLookup("SuperScalar2") }

// NewScalar1 returns the conventional single-issue baseline machine,
// loaded from its embedded spec.
func NewScalar1() *Machine { return mustLookup("Scalar1") }
