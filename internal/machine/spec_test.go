package machine

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"perfpredict/internal/ir"
)

// TestSpecBuiltinsMatchReferences proves the tentpole claim: the
// embedded spec files load to machines byte-identical to the seed
// hand-coded constructors — name, units, dispatch, flags, and every
// segment of every atomic expansion.
func TestSpecBuiltinsMatchReferences(t *testing.T) {
	pairs := []struct {
		name string
		spec *Machine
		ref  *Machine
	}{
		{"POWER1", NewPOWER1(), ReferencePOWER1()},
		{"SuperScalar2", NewSuperScalar2(), ReferenceSuperScalar2()},
		{"Scalar1", NewScalar1(), ReferenceScalar1()},
	}
	for _, p := range pairs {
		if !reflect.DeepEqual(p.spec, p.ref) {
			t.Errorf("%s: spec-loaded machine differs from reference constructor\nspec: %+v\nref:  %+v", p.name, p.spec, p.ref)
		}
		if p.spec.Fingerprint() != p.ref.Fingerprint() {
			t.Errorf("%s: fingerprint mismatch: spec %s, ref %s", p.name, p.spec.Fingerprint(), p.ref.Fingerprint())
		}
	}
}

// TestSpecRoundTrip: parse → print → parse is the identity, and the
// canonical printing is a fixed point, for every builtin plus a
// machine exercising multi-segment and start-offset cases.
func TestSpecRoundTrip(t *testing.T) {
	machines := []*Machine{ReferencePOWER1(), ReferenceSuperScalar2(), ReferenceScalar1()}
	for _, m := range machines {
		s := SpecOf(m)
		enc, err := s.Encode()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		s2, err := ParseSpec(enc)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Errorf("%s: parse(print(spec)) != spec", m.Name)
		}
		enc2, err := s2.Encode()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Errorf("%s: canonical encoding is not a fixed point", m.Name)
		}
		m2, err := s2.Machine()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Errorf("%s: SpecOf∘Machine round trip changed the machine", m.Name)
		}
	}
}

// validSpec returns a fresh spec known to pass Validate, for the
// table-driven mutation tests below.
func validSpec() *Spec { return SpecOf(ReferencePOWER1()) }

func TestSpecValidateErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string // substring of the error message
	}{
		{
			name:    "empty name",
			mutate:  func(s *Spec) { s.Name = "" },
			wantErr: "empty name",
		},
		{
			name:    "zero dispatch width",
			mutate:  func(s *Spec) { s.DispatchWidth = 0 },
			wantErr: "dispatch width 0",
		},
		{
			name:    "no units",
			mutate:  func(s *Spec) { s.Units = nil },
			wantErr: "no units",
		},
		{
			name:    "nonpositive unit count",
			mutate:  func(s *Spec) { s.Units["FPU"] = 0 },
			wantErr: "unit FPU count 0",
		},
		{
			name:    "unknown basic op",
			mutate:  func(s *Spec) { s.Ops["warp"] = s.Ops["fadd"] },
			wantErr: `unknown basic operation "warp"`,
		},
		{
			name:    "missing mapping",
			mutate:  func(s *Spec) { delete(s.Ops, "fsqrt") },
			wantErr: "missing mapping for fsqrt",
		},
		{
			name:    "empty expansion",
			mutate:  func(s *Spec) { s.Ops["fadd"] = []AtomicOpSpec{} },
			wantErr: "fadd maps to no atomic operations",
		},
		{
			name:    "unnamed atomic op",
			mutate:  func(s *Spec) { s.Ops["fadd"][0].Name = "" },
			wantErr: "unnamed atomic operation",
		},
		{
			name:    "zero-unit atomic op",
			mutate:  func(s *Spec) { s.Ops["fadd"][0].Segments = nil },
			wantErr: "fadd/fa occupies no units",
		},
		{
			name:    "unknown unit",
			mutate:  func(s *Spec) { s.Ops["fadd"][0].Segments[0].Unit = "VPU" },
			wantErr: `references unknown unit "VPU"`,
		},
		{
			name:    "negative start",
			mutate:  func(s *Spec) { s.Ops["fadd"][0].Segments[0].Start = -1 },
			wantErr: "negative start -1",
		},
		{
			name:    "negative cost",
			mutate:  func(s *Spec) { s.Ops["fadd"][0].Segments[0].Noncov = -2 },
			wantErr: "negative cost",
		},
		{
			name: "zero-duration segment",
			mutate: func(s *Spec) {
				s.Ops["fadd"][0].Segments[0].Noncov = 0
				s.Ops["fadd"][0].Segments[0].Cov = 0
			},
			wantErr: "zero-duration segment",
		},
		{
			name: "overlapping segments on one unit",
			mutate: func(s *Spec) {
				s.Ops["fadd"][0].Segments = []SegmentSpec{
					{Unit: "FPU", Start: 0, Noncov: 2},
					{Unit: "FPU", Start: 1, Noncov: 2},
				}
			},
			wantErr: "overlapping segments on FPU",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a spec with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// Each segment of one atomic operation occupies its own pipe (the
// Tetris placer never assigns two segments of the same op to one
// pipe, even when their busy intervals are disjoint), so same-kind
// segments are legal exactly when the machine has enough pipes of
// that kind. Fuzzing found the old rule — which accepted disjoint
// same-unit segments unconditionally — let through specs the placer
// could never place, sending Estimate into its full scan budget
// before erroring.
func TestSpecValidateSameUnitSegmentsNeedDistinctPipes(t *testing.T) {
	s := validSpec()
	s.Ops["fadd"][0].Segments = []SegmentSpec{
		{Unit: "FPU", Start: 0, Noncov: 1},
		{Unit: "FPU", Start: 2, Noncov: 1, Cov: 1},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("two FPU segments accepted on a 1-FPU machine")
	}
	if !strings.Contains(err.Error(), "needs 2 pipes of FPU") {
		t.Errorf("error %q does not mention the pipe budget", err)
	}
	s.Units["FPU"] = 2
	if err := s.Validate(); err != nil {
		t.Errorf("disjoint same-unit segments rejected with enough pipes: %v", err)
	}
}

// The machine-level Validate mirrors the spec-level invariants, so
// tables mutated in code fail identically to malformed data.
func TestMachineValidateErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Machine)
		wantErr string
	}{
		{
			name:    "empty expansion",
			mutate:  func(m *Machine) { m.Table[ir.OpFAdd] = []AtomicOp{} },
			wantErr: "maps to no atomic operations",
		},
		{
			name:    "zero-unit atomic op",
			mutate:  func(m *Machine) { m.Table[ir.OpFAdd] = []AtomicOp{{Name: "fa"}} },
			wantErr: "occupies no units",
		},
		{
			name: "negative start",
			mutate: func(m *Machine) {
				m.Table[ir.OpFAdd] = []AtomicOp{{Name: "fa", Segments: []Segment{{Unit: FPU, Start: -3, Noncov: 1}}}}
			},
			wantErr: "negative start",
		},
		{
			name: "overlapping segments",
			mutate: func(m *Machine) {
				m.Table[ir.OpFAdd] = []AtomicOp{{Name: "fa", Segments: []Segment{
					{Unit: FPU, Noncov: 3},
					{Unit: FPU, Start: 2, Noncov: 1},
				}}}
			},
			wantErr: "overlapping segments on FPU",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := ReferencePOWER1()
			tc.mutate(m)
			err := m.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a machine with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name":"X","dispatch_widht":4}`)); err == nil {
		t.Error("typoed field accepted")
	}
	if _, err := ParseSpec([]byte(`{"name":"X"} {"name":"Y"}`)); err == nil {
		t.Error("trailing document accepted")
	}
	if _, err := ParseSpec([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFingerprintContentSensitivity(t *testing.T) {
	base := ReferencePOWER1().Fingerprint()

	m := ReferencePOWER1()
	if m.Fingerprint() != base {
		t.Error("identical content, different fingerprints")
	}

	m = ReferencePOWER1()
	m.Name = "POWER1b"
	if m.Fingerprint() == base {
		t.Error("name change not reflected")
	}

	m = ReferencePOWER1()
	m.Table[ir.OpFAdd][0].Segments[0].Noncov = 7
	if m.Fingerprint() == base {
		t.Error("cost-table change not reflected")
	}

	m = ReferencePOWER1()
	m.UnitCounts[FPU] = 2
	if m.Fingerprint() == base {
		t.Error("unit-count change not reflected")
	}

	m = ReferencePOWER1()
	m.HasFMA = false
	if m.Fingerprint() == base {
		t.Error("feature-flag change not reflected")
	}

	m = ReferencePOWER1()
	m.DispatchWidth = 2
	if m.Fingerprint() == base {
		t.Error("dispatch-width change not reflected")
	}

	if ReferencePOWER1().Fingerprint() == ReferenceSuperScalar2().Fingerprint() {
		t.Error("distinct targets share a fingerprint")
	}
	if ReferencePOWER1().Fingerprint() == ReferenceScalar1().Fingerprint() {
		t.Error("distinct targets share a fingerprint")
	}
}
