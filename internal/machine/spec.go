package machine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"perfpredict/internal/ir"
)

// Spec is a machine description as data: the serializable form of a
// Machine, realizing the paper's portability claim that retargeting
// "is a matter of defining the atomic operation mapping and the atomic
// operation cost table" (§2.2). A spec is a plain JSON document — unit
// inventory, dispatch width, feature flags, and the full basic-op →
// atomic-op cost table — that is validated before it ever reaches the
// estimators, so a malformed table fails loudly at load time instead
// of deep inside tetris placement.
//
// The three builtin targets are shipped as //go:embed-ded spec files
// (see builtins.go); custom targets load from files via ParseSpec and
// register alongside them (see Registry).
type Spec struct {
	// Name identifies the target. Cache keys do NOT rely on it being
	// unique — they key on Machine.Fingerprint, i.e. on content.
	Name string `json:"name"`
	// DispatchWidth bounds operations begun per cycle.
	DispatchWidth int `json:"dispatch_width"`
	// HasFMA gates fused multiply-add emission in the lowering layer.
	HasFMA bool `json:"has_fma,omitempty"`
	// LoadsPerStore is the register-pressure heuristic constant K
	// (§2.2.1); zero disables it.
	LoadsPerStore int `json:"loads_per_store,omitempty"`
	// BranchCost is the uncovered branch cost c_br.
	BranchCost int `json:"branch_cost,omitempty"`
	// Units maps unit-kind names to pipe counts ("more bins").
	Units map[string]int `json:"units"`
	// Ops is the atomic operation mapping: basic-op mnemonic (ir.Op
	// spelling) to its serially executed atomic expansion.
	Ops map[string][]AtomicOpSpec `json:"ops"`
	// Memory, when present, declares the cache/TLB hierarchy and makes
	// the §2.3 memory term part of every prediction. Absent means all
	// loads are priced as L1 hits (the historical behavior).
	Memory *MemorySpec `json:"memory,omitempty"`
}

// AtomicOpSpec is one costed atomic operation of an expansion.
type AtomicOpSpec struct {
	Name     string        `json:"name"`
	Segments []SegmentSpec `json:"segments"`
}

// SegmentSpec is one unit's share of an atomic operation's cost object
// (Figure 2). Zero-valued fields are omitted from the encoding.
type SegmentSpec struct {
	Unit   string `json:"unit"`
	Start  int    `json:"start,omitempty"`
	Noncov int    `json:"noncov,omitempty"`
	Cov    int    `json:"cov,omitempty"`
}

// ParseSpec decodes a machine spec from its JSON form. Unknown fields
// are rejected — a typoed cost key is a description bug, not data to
// ignore. The result is not yet validated; call Validate (or Machine,
// which validates) before use.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("machine spec: %w", err)
	}
	// A second document in the stream is a malformed file, not data.
	if dec.More() {
		return nil, fmt.Errorf("machine spec: trailing data after document")
	}
	return &s, nil
}

// Encode renders the spec in canonical form: two-space-indented JSON
// with object keys sorted (encoding/json sorts map keys) and a
// trailing newline. Encode∘ParseSpec∘Encode is the identity on its
// output, which is what makes specs diffable, embeddable artifacts.
func (s *Spec) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("machine spec %s: %w", s.Name, err)
	}
	return append(out, '\n'), nil
}

// Validate checks every invariant the estimators depend on:
//
//   - the name is nonempty and the dispatch width positive;
//   - every unit kind has a positive pipe count;
//   - every op mnemonic is a known basic operation, and every basic
//     operation the lowering layer may emit (all of ir.AllOps) has a
//     nonempty atomic expansion;
//   - every atomic operation has a name and at least one segment;
//   - segments reference declared units, have nonnegative start /
//     noncoverable / coverable values, nonzero duration, and the
//     noncoverable (exclusive-busy) intervals of segments on the same
//     unit within one atomic operation do not overlap.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("machine spec: empty name")
	}
	if s.DispatchWidth <= 0 {
		return fmt.Errorf("machine spec %s: dispatch width %d, want > 0", s.Name, s.DispatchWidth)
	}
	if len(s.Units) == 0 {
		return fmt.Errorf("machine spec %s: no units", s.Name)
	}
	for k, c := range s.Units {
		if k == "" {
			return fmt.Errorf("machine spec %s: empty unit kind", s.Name)
		}
		if c <= 0 {
			return fmt.Errorf("machine spec %s: unit %s count %d, want > 0", s.Name, k, c)
		}
	}
	if s.Memory != nil {
		if err := s.Memory.Validate(s.Name); err != nil {
			return err
		}
	}
	for name := range s.Ops {
		if _, ok := ir.ParseOp(name); !ok {
			return fmt.Errorf("machine spec %s: unknown basic operation %q", s.Name, name)
		}
	}
	for _, op := range ir.AllOps() {
		seq, ok := s.Ops[op.String()]
		if !ok {
			return fmt.Errorf("machine spec %s: missing mapping for %s", s.Name, op)
		}
		if len(seq) == 0 {
			return fmt.Errorf("machine spec %s: %s maps to no atomic operations", s.Name, op)
		}
		for _, a := range seq {
			if a.Name == "" {
				return fmt.Errorf("machine spec %s: %s has an unnamed atomic operation", s.Name, op)
			}
			if len(a.Segments) == 0 {
				return fmt.Errorf("machine spec %s: %s/%s occupies no units", s.Name, op, a.Name)
			}
			perKind := map[string]int{}
			for i, seg := range a.Segments {
				if _, ok := s.Units[seg.Unit]; !ok {
					return fmt.Errorf("machine spec %s: %s/%s references unknown unit %q", s.Name, op, a.Name, seg.Unit)
				}
				if seg.Start < 0 {
					return fmt.Errorf("machine spec %s: %s/%s has negative start %d", s.Name, op, a.Name, seg.Start)
				}
				if seg.Noncov < 0 || seg.Cov < 0 {
					return fmt.Errorf("machine spec %s: %s/%s has negative cost (noncov %d, cov %d)", s.Name, op, a.Name, seg.Noncov, seg.Cov)
				}
				if seg.Noncov+seg.Cov == 0 {
					return fmt.Errorf("machine spec %s: %s/%s has a zero-duration segment on %s", s.Name, op, a.Name, seg.Unit)
				}
				for _, prev := range a.Segments[:i] {
					if prev.Unit != seg.Unit {
						continue
					}
					if seg.Start < prev.Start+prev.Noncov && prev.Start < seg.Start+seg.Noncov {
						return fmt.Errorf("machine spec %s: %s/%s has overlapping segments on %s", s.Name, op, a.Name, seg.Unit)
					}
				}
				// Each segment of one atomic operation occupies its own
				// pipe, so an expansion demanding more pipes of a kind
				// than the machine has could never be placed.
				perKind[seg.Unit]++
				if perKind[seg.Unit] > s.Units[seg.Unit] {
					return fmt.Errorf("machine spec %s: %s/%s needs %d pipes of %s, machine has %d",
						s.Name, op, a.Name, perKind[seg.Unit], seg.Unit, s.Units[seg.Unit])
				}
			}
		}
	}
	return nil
}

// Machine validates the spec and builds the runtime Machine it
// describes. Each call returns a fresh, independently mutable value.
func (s *Spec) Machine() (*Machine, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		Name:          s.Name,
		UnitCounts:    make(map[UnitKind]int, len(s.Units)),
		DispatchWidth: s.DispatchWidth,
		HasFMA:        s.HasFMA,
		LoadsPerStore: s.LoadsPerStore,
		BranchCost:    s.BranchCost,
		Table:         make(map[ir.Op][]AtomicOp, len(s.Ops)),
		Memory:        s.Memory.Hierarchy(),
	}
	for k, c := range s.Units {
		m.UnitCounts[UnitKind(k)] = c
	}
	for name, seq := range s.Ops {
		op, _ := ir.ParseOp(name) // Validate vouched for every name
		atomics := make([]AtomicOp, len(seq))
		for i, a := range seq {
			segs := make([]Segment, len(a.Segments))
			for j, seg := range a.Segments {
				segs[j] = Segment{Unit: UnitKind(seg.Unit), Start: seg.Start, Noncov: seg.Noncov, Cov: seg.Cov}
			}
			atomics[i] = AtomicOp{Name: a.Name, Segments: segs}
		}
		m.Table[op] = atomics
	}
	return m, nil
}

// WithExtraPipe builds a machine identical to m except for one more
// pipe of kind k — the "one-more-pipe" what-if of the explain
// subsystem. The round-trip goes through the spec form, so the result
// is validated and carries a fresh content fingerprint (every cache
// keyed on content stays sound). Adding a pipe can never invalidate a
// spec: the per-kind segment rule only bounds counts from below.
func WithExtraPipe(m *Machine, k UnitKind) (*Machine, error) {
	s := SpecOf(m)
	if s.Units[string(k)] == 0 {
		return nil, fmt.Errorf("machine %s: no unit kind %s to extend", m.Name, k)
	}
	s.Units[string(k)]++
	return s.Machine()
}

// SpecOf is the inverse of Spec.Machine: the serializable description
// of an existing Machine. SpecOf(m).Machine() reproduces m exactly
// (up to map iteration order, which neither fingerprints nor the
// estimators observe), so hand-coded tables can be exported, diffed,
// and re-embedded as data.
func SpecOf(m *Machine) *Spec {
	s := &Spec{
		Name:          m.Name,
		DispatchWidth: m.DispatchWidth,
		HasFMA:        m.HasFMA,
		LoadsPerStore: m.LoadsPerStore,
		BranchCost:    m.BranchCost,
		Units:         make(map[string]int, len(m.UnitCounts)),
		Ops:           make(map[string][]AtomicOpSpec, len(m.Table)),
		Memory:        SpecOfHierarchy(m.Memory),
	}
	for k, c := range m.UnitCounts {
		s.Units[string(k)] = c
	}
	ops := make([]ir.Op, 0, len(m.Table))
	for op := range m.Table {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].String() < ops[j].String() })
	for _, op := range ops {
		seq := m.Table[op]
		atomics := make([]AtomicOpSpec, len(seq))
		for i, a := range seq {
			segs := make([]SegmentSpec, len(a.Segments))
			for j, seg := range a.Segments {
				segs[j] = SegmentSpec{Unit: string(seg.Unit), Start: seg.Start, Noncov: seg.Noncov, Cov: seg.Cov}
			}
			atomics[i] = AtomicOpSpec{Name: a.Name, Segments: segs}
		}
		s.Ops[op.String()] = atomics
	}
	return s
}
