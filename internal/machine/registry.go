package machine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a thread-safe catalog of machine specs, looked up by
// case-insensitive name. It stores validated *descriptions*, not
// Machine values: every Lookup builds a fresh Machine, so callers may
// mutate their copy (the SuperScalar2-from-POWER1 pattern) without
// corrupting the catalog or each other.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]*Spec // key: strings.ToLower(spec.Name)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: map[string]*Spec{}}
}

// Register validates the spec and adds it to the catalog. Registering
// a second spec under an already-taken name (case-insensitively) is an
// error: name collisions are configuration bugs, and silently
// replacing a target is exactly the aliasing hazard content
// fingerprints exist to prevent.
func (r *Registry) Register(s *Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	key := strings.ToLower(s.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[key]; dup {
		return fmt.Errorf("machine registry: %q already registered", s.Name)
	}
	r.specs[key] = s
	return nil
}

// Lookup builds a fresh Machine from the spec registered under name
// (case-insensitive). An unknown name errors with the list of valid
// names.
func (r *Registry) Lookup(name string) (*Machine, error) {
	r.mu.RLock()
	s, ok := r.specs[strings.ToLower(name)]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("machine registry: unknown machine %q (registered: %s)",
			name, strings.Join(r.Names(), ", "))
	}
	return s.Machine()
}

// Spec returns the registered description itself (shared, not a copy —
// treat it as immutable) and whether the name is registered.
func (r *Registry) Spec(name string) (*Spec, bool) {
	r.mu.RLock()
	s, ok := r.specs[strings.ToLower(name)]
	r.mu.RUnlock()
	return s, ok
}

// Names lists the registered machine names (as spelled in their
// specs), sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.specs))
	for _, s := range r.specs {
		out = append(out, s.Name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Default is the process-wide registry. The embedded builtin specs
// register here at init (builtins.go); applications add custom targets
// via Register.
var Default = NewRegistry()

// Register adds a spec to the default registry.
func Register(s *Spec) error { return Default.Register(s) }

// Lookup builds a Machine from the default registry.
func Lookup(name string) (*Machine, error) { return Default.Lookup(name) }

// Names lists the default registry's machine names.
func Names() []string { return Default.Names() }
