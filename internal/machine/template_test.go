package machine

import (
	"strings"
	"testing"
)

func power1Template(t *testing.T) *SpecTemplate {
	t.Helper()
	tpl, err := ParseTemplate([]byte(`{
		"base_machine": "POWER1",
		"dispatch": [4, 5],
		"pipes": {"FPU": [1, 2], "FXU": [1, 3]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

func TestTemplateSizeAndCanonicalOrder(t *testing.T) {
	tpl := power1Template(t)
	size, err := tpl.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != 2*2*3 {
		t.Fatalf("size = %d, want 12", size)
	}
	cells, err := tpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != size {
		t.Fatalf("expanded %d cells, Size says %d", len(cells), size)
	}
	// Canonical order: dispatch slowest, then pipes sorted by unit
	// (FPU before FXU), last dimension fastest.
	wantFirst := []string{
		"POWER1[dispatch=4,FPU=1,FXU=1]",
		"POWER1[dispatch=4,FPU=1,FXU=2]",
		"POWER1[dispatch=4,FPU=1,FXU=3]",
		"POWER1[dispatch=4,FPU=2,FXU=1]",
	}
	for i, want := range wantFirst {
		if cells[i].Spec.Name != want {
			t.Errorf("cell %d = %s, want %s", i, cells[i].Spec.Name, want)
		}
	}
	last := cells[len(cells)-1]
	if last.Spec.Name != "POWER1[dispatch=5,FPU=2,FXU=3]" {
		t.Errorf("last cell = %s", last.Spec.Name)
	}
	if last.Choices["dispatch"] != 5 || last.Choices["pipes.FPU"] != 2 || last.Choices["pipes.FXU"] != 3 {
		t.Errorf("last choices = %v", last.Choices)
	}
	if last.Spec.DispatchWidth != 5 || last.Spec.Units["FPU"] != 2 || last.Spec.Units["FXU"] != 3 {
		t.Errorf("last spec not mutated: dispatch %d units %v", last.Spec.DispatchWidth, last.Spec.Units)
	}
	// The base spec itself must not have been mutated by expansion.
	base, err := tpl.ResolveBase()
	if err != nil {
		t.Fatal(err)
	}
	if base.DispatchWidth != 4 || base.Units["FPU"] != 1 {
		t.Errorf("expansion mutated the resolved base: %+v", base)
	}
}

func TestTemplateOpAlternatives(t *testing.T) {
	tpl, err := ParseTemplate([]byte(`{
		"base_machine": "POWER1",
		"ops": {"fmul": [
			[{"name": "fm.fast", "segments": [{"unit": "FPU", "noncov": 1}]}],
			[{"name": "fm.slow", "segments": [{"unit": "FPU", "noncov": 1, "cov": 2}]}]
		]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := tpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(cells))
	}
	if cells[0].Spec.Name != "POWER1[fmul@0]" || cells[1].Spec.Name != "POWER1[fmul@1]" {
		t.Errorf("names %s, %s", cells[0].Spec.Name, cells[1].Spec.Name)
	}
	if got := cells[1].Spec.Ops["fmul"][0].Name; got != "fm.slow" {
		t.Errorf("alternative 1 expansion = %s, want fm.slow", got)
	}
	if got := cells[0].Choices["ops.fmul"]; got != 0 {
		t.Errorf("choices[ops.fmul] = %d, want 0", got)
	}
}

func TestTemplateBudgetOf(t *testing.T) {
	tpl := power1Template(t)
	cells, err := tpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Default weights: every pipe and dispatch slot costs 1. POWER1
	// has 4 units; base cell = 4 pipes + dispatch 4 = 8.
	if got := tpl.BudgetOf(cells[0].Spec); got != 8 {
		t.Errorf("default budget of base cell = %v, want 8", got)
	}

	half := 0.5
	zero := 0.0
	tpl.Budget = &BudgetSpec{
		DefaultPipeWeight: &half,
		PipeWeights:       map[string]float64{"FPU": 4},
		DispatchWeight:    &zero,
	}
	// Base cell: FPU 1×4 + (BranchU + CR-LogicU + FXU) 3×0.5 + dispatch 0.
	if got := tpl.BudgetOf(cells[0].Spec); got != 4+1.5 {
		t.Errorf("weighted budget = %v, want 5.5", got)
	}
}

func TestTemplateFingerprintResolvesBase(t *testing.T) {
	byName := power1Template(t)
	m, err := Lookup("POWER1")
	if err != nil {
		t.Fatal(err)
	}
	inline := *byName
	inline.BaseMachine = ""
	inline.Base = SpecOf(m)
	fp1, err := byName.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := inline.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Errorf("base_machine and identical inline base fingerprint differently")
	}
	// A different range must change the fingerprint.
	changed := *byName
	changed.Dispatch = &IntRange{Min: 4, Max: 6}
	fp3, err := changed.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Errorf("changing the dispatch range left the fingerprint unchanged")
	}
}

func TestTemplateEncodeRoundTrip(t *testing.T) {
	tpl := power1Template(t)
	enc1, err := tpl.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTemplate(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc1) != string(enc2) {
		t.Errorf("Encode∘ParseTemplate is not the identity:\n%s\nvs\n%s", enc1, enc2)
	}
	if !strings.Contains(string(enc1), `"dispatch": [`) {
		t.Errorf("ranges not encoded as arrays:\n%s", enc1)
	}
}

func TestTemplateValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"no base", `{"dispatch":[4,5]}`, "no base"},
		{"both bases", `{"base_machine":"POWER1","base":{"name":"x"},"dispatch":[4,5]}`, "not both"},
		{"unknown base machine", `{"base_machine":"PDP11"}`, "unknown"},
		{"inverted dispatch", `{"base_machine":"POWER1","dispatch":[5,4]}`, "1 <= min <= max"},
		{"zero pipe min", `{"base_machine":"POWER1","pipes":{"FPU":[0,2]}}`, "1 <= min <= max"},
		{"unknown unit", `{"base_machine":"POWER1","pipes":{"VPU":[1,2]}}`, "unknown unit"},
		{"unknown op", `{"base_machine":"POWER1","ops":{"frobnicate":[[{"name":"z","segments":[{"unit":"FPU","noncov":1}]}]]}}`, "unknown op"},
		{"empty alternatives", `{"base_machine":"POWER1","ops":{"fmul":[]}}`, "no alternatives"},
		{"empty alternative", `{"base_machine":"POWER1","ops":{"fmul":[[]]}}`, "is empty"},
		{"negative weight", `{"base_machine":"POWER1","dispatch":[4,5],"budget":{"dispatch_weight":-1}}`, "negative"},
		{"weight for unknown unit", `{"base_machine":"POWER1","dispatch":[4,5],"budget":{"pipe_weights":{"VPU":2}}}`, "unknown unit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tpl, err := ParseTemplate([]byte(tc.json))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			err = tpl.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid template")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	if _, err := ParseTemplate([]byte(`{"base_machine":"POWER1","sauce":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseTemplate([]byte(`{"base_machine":"POWER1"} trailing`)); err == nil {
		t.Error("trailing data accepted")
	}
}

// TestTemplateExpandValidatesCells: an op alternative that demands two
// pipes of a kind whose range reaches down to one is caught at the
// offending cell, not silently emitted.
func TestTemplateExpandValidatesCells(t *testing.T) {
	tpl, err := ParseTemplate([]byte(`{
		"base_machine": "POWER1",
		"pipes": {"FPU": [1, 2]},
		"ops": {"fmul": [[
			{"name": "fm.wide", "segments": [
				{"unit": "FPU", "noncov": 1},
				{"unit": "FPU", "start": 2, "noncov": 1}
			]}
		]]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.Validate(); err != nil {
		t.Fatalf("template-level validation should pass (per-cell rule): %v", err)
	}
	_, err = tpl.Expand()
	if err == nil {
		t.Fatal("Expand accepted a lattice with an invalid cell")
	}
	if !strings.Contains(err.Error(), "FPU=1") {
		t.Errorf("error %q does not name the offending cell", err)
	}
}
