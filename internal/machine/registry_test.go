package machine

import (
	"reflect"
	"strings"
	"testing"
)

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(SpecOf(ReferencePOWER1())); err != nil {
		t.Fatal(err)
	}
	m, err := r.Lookup("POWER1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, ReferencePOWER1()) {
		t.Error("looked-up machine differs from the registered spec's machine")
	}

	// Lookup is case-insensitive.
	if _, err := r.Lookup("power1"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}

	// Each lookup builds a fresh machine: mutating one caller's copy
	// must not leak into the next.
	m.DispatchWidth = 99
	m2, err := r.Lookup("POWER1")
	if err != nil {
		t.Fatal(err)
	}
	if m2.DispatchWidth == 99 {
		t.Error("Lookup returned a shared machine; mutation leaked between callers")
	}
}

func TestRegistryDuplicateAndInvalid(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(SpecOf(ReferencePOWER1())); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(SpecOf(ReferencePOWER1())); err == nil {
		t.Error("duplicate registration accepted")
	}
	bad := SpecOf(ReferencePOWER1())
	bad.Name = "Broken"
	bad.DispatchWidth = -1
	if err := r.Register(bad); err == nil {
		t.Error("invalid spec registered")
	}
	if _, err := r.Lookup("Broken"); err == nil {
		t.Error("invalid spec became visible despite failed registration")
	}
}

func TestRegistryUnknownNameListsChoices(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(SpecOf(ReferencePOWER1())); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(SpecOf(ReferenceScalar1())); err != nil {
		t.Fatal(err)
	}
	_, err := r.Lookup("PentiumPro")
	if err == nil {
		t.Fatal("unknown machine accepted")
	}
	for _, want := range []string{"PentiumPro", "POWER1", "Scalar1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, m := range []*Machine{ReferenceSuperScalar2(), ReferencePOWER1(), ReferenceScalar1()} {
		if err := r.Register(SpecOf(m)); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Names()
	want := []string{"POWER1", "Scalar1", "SuperScalar2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
}

func TestDefaultRegistryHasBuiltins(t *testing.T) {
	want := []string{"POWER1", "Scalar1", "SuperScalar2"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("default registry names = %v, want %v", got, want)
	}
	for _, name := range want {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%s): %v", name, err)
		}
	}
}

// Lookup resolves names case-insensitively but does no other repair:
// whitespace, empty names, and near-misses all fail, and every
// failure names the registered alternatives so the caller's error is
// actionable.
func TestRegistryLookupErrorTable(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(SpecOf(ReferencePOWER1())); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		in   string
	}{
		{"empty name", ""},
		{"unknown name", "POWER9"},
		{"leading space", " POWER1"},
		{"trailing space", "POWER1 "},
		{"interior punctuation", "POWER-1"},
		{"prefix of a name", "POWER"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := r.Lookup(tc.in)
			if err == nil {
				t.Fatalf("Lookup(%q) succeeded; want error", tc.in)
			}
			if !strings.Contains(err.Error(), "POWER1") {
				t.Errorf("Lookup(%q) error %q does not list the registered names", tc.in, err)
			}
		})
	}
}
