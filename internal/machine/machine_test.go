package machine

import (
	"testing"

	"perfpredict/internal/ir"
)

func TestAllMachinesValidate(t *testing.T) {
	for _, m := range []*Machine{NewPOWER1(), NewSuperScalar2(), NewScalar1()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestPOWER1PaperCosts(t *testing.T) {
	m := NewPOWER1()
	// "each floating-point add operation has one cycle of noncoverable
	// cost and one cycle of coverable cost on the floating point unit"
	fadd, err := m.Lookup(ir.OpFAdd)
	if err != nil {
		t.Fatal(err)
	}
	if len(fadd) != 1 || len(fadd[0].Segments) != 1 {
		t.Fatalf("fadd expansion: %+v", fadd)
	}
	seg := fadd[0].Segments[0]
	if seg.Unit != FPU || seg.Noncov != 1 || seg.Cov != 1 {
		t.Errorf("fadd segment = %+v", seg)
	}
	if fadd[0].Latency() != 2 {
		t.Errorf("fadd latency = %d", fadd[0].Latency())
	}
	// "a floating point store operation will occupy one floating point
	// unit for two cycles with one cycle being coverable and will occupy
	// one integer unit for one cycle"
	fst, _ := m.Lookup(ir.OpFStore)
	units := map[UnitKind]Segment{}
	for _, s := range fst[0].Segments {
		units[s.Unit] = s
	}
	if s := units[FPU]; s.Noncov != 1 || s.Cov != 1 {
		t.Errorf("fstore FPU segment = %+v", s)
	}
	if s := units[FXU]; s.Noncov != 1 {
		t.Errorf("fstore FXU segment = %+v", s)
	}
	// "the integer multiply takes three cycles when the multiplier has a
	// value between -128 and 127, but takes five cycles for general
	// values"
	if m.Latency(ir.OpIMulSmall) != 3 {
		t.Errorf("small imul latency = %d", m.Latency(ir.OpIMulSmall))
	}
	if m.Latency(ir.OpIMul) != 5 {
		t.Errorf("general imul latency = %d", m.Latency(ir.OpIMul))
	}
	if !m.HasFMA {
		t.Error("POWER1 must support FMA")
	}
}

func TestScalar1NoOverlap(t *testing.T) {
	s := NewScalar1()
	if len(s.UnitCounts) != 1 || s.UnitCounts[UNI] != 1 {
		t.Errorf("Scalar1 units: %v", s.UnitCounts)
	}
	for _, op := range ir.AllOps() {
		seq, err := s.Lookup(op)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range seq {
			for _, seg := range a.Segments {
				if seg.Cov != 0 {
					t.Errorf("%s has coverable cost on Scalar1", op)
				}
				if seg.Unit != UNI {
					t.Errorf("%s uses unit %s on Scalar1", op, seg.Unit)
				}
			}
		}
	}
	// Scalar latency equals POWER1 dependent-visible latency.
	p := NewPOWER1()
	for _, op := range []ir.Op{ir.OpFAdd, ir.OpFLoad, ir.OpIMul, ir.OpFDiv} {
		if s.Latency(op) != p.Latency(op) {
			t.Errorf("%s: scalar %d != power %d", op, s.Latency(op), p.Latency(op))
		}
	}
}

func TestSuperScalar2Pipes(t *testing.T) {
	m := NewSuperScalar2()
	if m.UnitCounts[FXU] != 2 || m.UnitCounts[FPU] != 2 {
		t.Errorf("unit counts: %v", m.UnitCounts)
	}
	units := m.Units()
	// 2 FXU + 2 FPU + 1 BRU + 1 CRU = 6 instances, stable order.
	if len(units) != 6 {
		t.Fatalf("units: %v", units)
	}
	if units[0].String() == "" {
		t.Error("empty unit name")
	}
	// Instances of the same kind are adjacent and indexed.
	byKind := map[UnitKind][]int{}
	for _, u := range units {
		byKind[u.Kind] = append(byKind[u.Kind], u.Index)
	}
	for k, idxs := range byKind {
		for i, idx := range idxs {
			if idx != i {
				t.Errorf("%s instance indices: %v", k, idxs)
			}
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	m := NewPOWER1()
	delete(m.Table, ir.OpFSqrt)
	if _, err := m.Lookup(ir.OpFSqrt); err == nil {
		t.Error("expected error for unmapped op")
	}
	if err := m.Validate(); err == nil {
		t.Error("Validate should fail with missing mapping")
	}
}

func TestOccupancyVsLatency(t *testing.T) {
	m := NewPOWER1()
	// FP add: occupancy 1 (noncov only), latency 2.
	if m.Occupancy(ir.OpFAdd) != 1 {
		t.Errorf("fadd occupancy = %d", m.Occupancy(ir.OpFAdd))
	}
	// FDiv occupies the pipe for its whole latency.
	if m.Occupancy(ir.OpFDiv) != m.Latency(ir.OpFDiv) {
		t.Error("fdiv should be non-pipelined")
	}
	// FStore occupies two units: occupancy 2, latency 2.
	if m.Occupancy(ir.OpFStore) != 2 {
		t.Errorf("fstore occupancy = %d", m.Occupancy(ir.OpFStore))
	}
}

func TestValidateCatchesBadSegments(t *testing.T) {
	m := NewPOWER1()
	m.Table[ir.OpFAdd] = []AtomicOp{{Name: "bad", Segments: []Segment{{Unit: "NOPE", Noncov: 1}}}}
	if err := m.Validate(); err == nil {
		t.Error("unknown unit not caught")
	}
	m = NewPOWER1()
	m.Table[ir.OpFAdd] = []AtomicOp{{Name: "bad", Segments: []Segment{{Unit: FPU}}}}
	if err := m.Validate(); err == nil {
		t.Error("zero-cost segment not caught")
	}
	m = NewPOWER1()
	m.DispatchWidth = 0
	if err := m.Validate(); err == nil {
		t.Error("zero dispatch width not caught")
	}
}
