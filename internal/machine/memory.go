package machine

import "fmt"

// MemorySpec is the declarative memory hierarchy of a machine spec:
// the §2.3 cost category made data. When present, the aggregation
// layer folds a symbolic cache-miss term (distinct-line count × miss
// penalty, per level) into every top-level loop nest's price; when
// absent, predictions are byte-identical to a hierarchy-less machine —
// all loads priced as L1 hits, exactly the pre-memory behavior.
type MemorySpec struct {
	// Levels lists the cache levels nearest-first (L1, L2, …).
	Levels []CacheLevelSpec `json:"levels"`
	// TLB, when present, adds a page-granular term.
	TLB *TLBSpec `json:"tlb,omitempty"`
	// ElemBytes is the array element size the line model divides by
	// (REAL = 8). Zero means 8.
	ElemBytes int `json:"elem_bytes,omitempty"`
}

// CacheLevelSpec is one cache level's geometry and miss price.
type CacheLevelSpec struct {
	Name      string `json:"name"`
	SizeBytes int    `json:"size_bytes"`
	LineBytes int    `json:"line_bytes"`
	// Assoc is the set associativity; it must divide the line count
	// (the simulator's constraint, kept here so spec-derived simulator
	// configs are always constructible).
	Assoc int `json:"assoc"`
	// MissPenalty is the line-fill cost in cycles. Zero prices the
	// level out entirely — useful for what-ifs.
	MissPenalty int `json:"miss_penalty"`
}

// TLBSpec is the translation-lookaside geometry.
type TLBSpec struct {
	PageBytes   int `json:"page_bytes"`
	Entries     int `json:"entries"`
	Assoc       int `json:"assoc"`
	MissPenalty int `json:"miss_penalty"`
}

// Validate checks the invariants the memory model and the spec-derived
// simulator configs depend on.
func (ms *MemorySpec) Validate(specName string) error {
	if len(ms.Levels) == 0 {
		return fmt.Errorf("machine spec %s: memory section has no cache levels", specName)
	}
	elem := ms.ElemBytes
	if elem == 0 {
		elem = 8
	}
	if elem < 0 {
		return fmt.Errorf("machine spec %s: memory elem_bytes %d, want > 0", specName, ms.ElemBytes)
	}
	prevSize := 0
	for i, l := range ms.Levels {
		if l.Name == "" {
			return fmt.Errorf("machine spec %s: memory level %d has no name", specName, i)
		}
		if l.SizeBytes <= 0 || l.LineBytes <= 0 {
			return fmt.Errorf("machine spec %s: memory level %s: size %d, line %d, want > 0", specName, l.Name, l.SizeBytes, l.LineBytes)
		}
		if l.SizeBytes%l.LineBytes != 0 {
			return fmt.Errorf("machine spec %s: memory level %s: size %d not a multiple of line %d", specName, l.Name, l.SizeBytes, l.LineBytes)
		}
		if l.LineBytes%elem != 0 {
			return fmt.Errorf("machine spec %s: memory level %s: line %d not a multiple of elem_bytes %d", specName, l.Name, l.LineBytes, elem)
		}
		lines := l.SizeBytes / l.LineBytes
		if l.Assoc <= 0 || lines%l.Assoc != 0 {
			return fmt.Errorf("machine spec %s: memory level %s: assoc %d must be positive and divide the %d lines", specName, l.Name, l.Assoc, lines)
		}
		if l.MissPenalty < 0 {
			return fmt.Errorf("machine spec %s: memory level %s: miss penalty %d, want >= 0", specName, l.Name, l.MissPenalty)
		}
		if l.SizeBytes < prevSize {
			return fmt.Errorf("machine spec %s: memory level %s: size %d smaller than the previous level's %d", specName, l.Name, l.SizeBytes, prevSize)
		}
		prevSize = l.SizeBytes
	}
	if t := ms.TLB; t != nil {
		if t.PageBytes <= 0 || t.Entries <= 0 {
			return fmt.Errorf("machine spec %s: TLB page %d, entries %d, want > 0", specName, t.PageBytes, t.Entries)
		}
		if t.Assoc <= 0 || t.Entries%t.Assoc != 0 {
			return fmt.Errorf("machine spec %s: TLB assoc %d must be positive and divide the %d entries", specName, t.Assoc, t.Entries)
		}
		if t.MissPenalty < 0 {
			return fmt.Errorf("machine spec %s: TLB miss penalty %d, want >= 0", specName, t.MissPenalty)
		}
	}
	return nil
}

// MemoryHierarchy is the runtime form of MemorySpec, carried on
// Machine. Nil means "no hierarchy declared" and is semantically
// distinct from an all-zero-penalty hierarchy only in that both
// produce identical prices; cache keys distinguish them via the
// fingerprint.
type MemoryHierarchy struct {
	Levels    []CacheLevel
	TLB       *TLBGeometry
	ElemBytes int // resolved: always >= 1
}

// CacheLevel is one runtime cache level.
type CacheLevel struct {
	Name        string
	SizeBytes   int64
	LineBytes   int64
	Assoc       int
	MissPenalty int64
}

// TLBGeometry is the runtime TLB description.
type TLBGeometry struct {
	PageBytes   int64
	Entries     int64
	Assoc       int
	MissPenalty int64
}

// Hierarchy builds the runtime hierarchy. The spec must already have
// been validated.
func (ms *MemorySpec) Hierarchy() *MemoryHierarchy {
	if ms == nil {
		return nil
	}
	h := &MemoryHierarchy{
		Levels:    make([]CacheLevel, len(ms.Levels)),
		ElemBytes: ms.ElemBytes,
	}
	if h.ElemBytes <= 0 {
		h.ElemBytes = 8
	}
	for i, l := range ms.Levels {
		h.Levels[i] = CacheLevel{
			Name:        l.Name,
			SizeBytes:   int64(l.SizeBytes),
			LineBytes:   int64(l.LineBytes),
			Assoc:       l.Assoc,
			MissPenalty: int64(l.MissPenalty),
		}
	}
	if t := ms.TLB; t != nil {
		h.TLB = &TLBGeometry{
			PageBytes:   int64(t.PageBytes),
			Entries:     int64(t.Entries),
			Assoc:       t.Assoc,
			MissPenalty: int64(t.MissPenalty),
		}
	}
	return h
}

// SpecOfHierarchy is the inverse of Hierarchy, for SpecOf.
func SpecOfHierarchy(h *MemoryHierarchy) *MemorySpec {
	if h == nil {
		return nil
	}
	ms := &MemorySpec{
		Levels:    make([]CacheLevelSpec, len(h.Levels)),
		ElemBytes: h.ElemBytes,
	}
	for i, l := range h.Levels {
		ms.Levels[i] = CacheLevelSpec{
			Name:        l.Name,
			SizeBytes:   int(l.SizeBytes),
			LineBytes:   int(l.LineBytes),
			Assoc:       l.Assoc,
			MissPenalty: int(l.MissPenalty),
		}
	}
	if t := h.TLB; t != nil {
		ms.TLB = &TLBSpec{
			PageBytes:   int(t.PageBytes),
			Entries:     int(t.Entries),
			Assoc:       t.Assoc,
			MissPenalty: int(t.MissPenalty),
		}
	}
	return ms
}

// Active reports whether the hierarchy can contribute a nonzero
// price: at least one level or the TLB has a nonzero miss penalty.
// An inactive hierarchy (nil, or all penalties zero) must leave
// predictions byte-identical to a machine with no hierarchy at all,
// so the aggregation layer skips the memory pass entirely when false.
func (h *MemoryHierarchy) Active() bool {
	if h == nil {
		return false
	}
	for _, l := range h.Levels {
		if l.MissPenalty != 0 {
			return true
		}
	}
	return h.TLB != nil && h.TLB.MissPenalty != 0
}

// Clone returns an independently mutable copy.
func (h *MemoryHierarchy) Clone() *MemoryHierarchy {
	if h == nil {
		return nil
	}
	c := &MemoryHierarchy{
		Levels:    append([]CacheLevel(nil), h.Levels...),
		ElemBytes: h.ElemBytes,
	}
	if h.TLB != nil {
		t := *h.TLB
		c.TLB = &t
	}
	return c
}

// POWER1Memory returns the documented POWER1 data-side hierarchy: a
// 64 KiB four-way data cache with 128-byte lines and a 15-cycle line
// fill, plus a 128-entry two-way TLB over 4 KiB pages with a 36-cycle
// reload (the geometry of cachesim.POWER1D/POWER1TLB and the former
// cachemodel.DefaultConfig, now spec-derived).
func POWER1Memory() *MemoryHierarchy {
	return &MemoryHierarchy{
		Levels: []CacheLevel{
			{Name: "L1D", SizeBytes: 64 << 10, LineBytes: 128, Assoc: 4, MissPenalty: 15},
		},
		TLB:       &TLBGeometry{PageBytes: 4096, Entries: 128, Assoc: 2, MissPenalty: 36},
		ElemBytes: 8,
	}
}
