package machine

import "perfpredict/internal/ir"

// single builds a one-atomic-op expansion with one segment.
func single(name string, unit UnitKind, noncov, cov int) []AtomicOp {
	return []AtomicOp{{Name: name, Segments: []Segment{{Unit: unit, Noncov: noncov, Cov: cov}}}}
}

// ReferencePOWER1 is the seed hand-coded constructor for the IBM
// RS/6000 POWER target, kept as the differential oracle the embedded
// spec file (specs/power1.json) is proven byte-identical against. New
// code should obtain targets via NewPOWER1 (spec-loaded) or the
// registry.
//
// It models the IBM RS/6000 POWER architecture of the paper's
// examples: one fixed-point unit (which executes integer ops, loads,
// stores and address generation), one floating-point unit with a fused
// multiply-add pipeline, one branch unit and one condition-register
// logic unit. Cost values follow the paper where it states them:
//
//   - a floating-point add has one cycle of noncoverable and one cycle
//     of coverable cost on the FPU (§2.1);
//   - a floating-point store occupies the FPU for two cycles (one
//     coverable) and one integer-unit cycle (§2.1);
//   - integer multiply takes 3 cycles for multipliers in [−128, 127]
//     and 5 cycles in general (§2.2.1).
//
// Remaining latencies follow the published POWER1 pipeline (2-cycle
// loads, ~19-cycle divides, non-pipelined).
func ReferencePOWER1() *Machine {
	m := &Machine{
		Name:          "POWER1",
		UnitCounts:    map[UnitKind]int{FXU: 1, FPU: 1, BRU: 1, CRU: 1},
		DispatchWidth: 4,
		HasFMA:        true,
		LoadsPerStore: 0, // enabled per-run by the translation module
		BranchCost:    3,
		Table:         map[ir.Op][]AtomicOp{},
	}
	t := m.Table
	t[ir.OpIAdd] = single("a", FXU, 1, 0)
	t[ir.OpISub] = single("sf", FXU, 1, 0)
	t[ir.OpIMulSmall] = single("muls-s", FXU, 3, 0)
	t[ir.OpIMul] = single("muls", FXU, 5, 0)
	t[ir.OpIDiv] = single("divs", FXU, 19, 0)
	// Integer modulo: divide leaves the remainder in MQ; model as a
	// divide followed by a move (1 cycle).
	t[ir.OpIMod] = []AtomicOp{
		{Name: "divs", Segments: []Segment{{Unit: FXU, Noncov: 19}}},
		{Name: "mfmq", Segments: []Segment{{Unit: FXU, Noncov: 1}}},
	}
	t[ir.OpINeg] = single("neg", FXU, 1, 0)
	t[ir.OpIAbs] = single("abs", FXU, 1, 0)

	t[ir.OpFAdd] = single("fa", FPU, 1, 1)
	t[ir.OpFSub] = single("fs", FPU, 1, 1)
	t[ir.OpFMul] = single("fm", FPU, 1, 1)
	t[ir.OpFMA] = single("fma", FPU, 1, 1)
	t[ir.OpFMS] = single("fms", FPU, 1, 1)
	t[ir.OpFDiv] = single("fd", FPU, 19, 0)
	t[ir.OpFNeg] = single("fneg", FPU, 1, 0)
	t[ir.OpFAbs] = single("fabs", FPU, 1, 0)
	// POWER1 has no hardware sqrt: Newton iteration sequence in the FPU.
	t[ir.OpFSqrt] = single("fsqrt", FPU, 27, 0)
	// min/max compile to compare + select ≈ 2 FPU cycles.
	t[ir.OpFMin] = single("fmin", FPU, 2, 0)
	t[ir.OpFMax] = single("fmax", FPU, 2, 0)

	// Conversions round-trip through memory on POWER1 (store/reload);
	// model as FPU work plus an FXU cycle.
	t[ir.OpItoF] = []AtomicOp{{Name: "itof", Segments: []Segment{
		{Unit: FXU, Noncov: 1}, {Unit: FPU, Start: 1, Noncov: 1, Cov: 1},
	}}}
	t[ir.OpFtoI] = []AtomicOp{{Name: "ftoi", Segments: []Segment{
		{Unit: FPU, Noncov: 1, Cov: 1}, {Unit: FXU, Start: 2, Noncov: 1},
	}}}

	// Loads execute in the FXU: one noncoverable cycle of address
	// generation + cache access, one coverable cycle before the datum
	// is usable (2-cycle load-use latency).
	t[ir.OpILoad] = single("l", FXU, 1, 1)
	t[ir.OpFLoad] = single("lfd", FXU, 1, 1)
	t[ir.OpIStore] = single("st", FXU, 1, 0)
	// The paper's example: FP store occupies the FPU two cycles (one
	// coverable) and one FXU cycle.
	t[ir.OpFStore] = []AtomicOp{{Name: "stfd", Segments: []Segment{
		{Unit: FXU, Noncov: 1},
		{Unit: FPU, Noncov: 1, Cov: 1},
	}}}
	t[ir.OpAddr] = single("cal", FXU, 1, 0)

	// Compares write the condition register: one execution cycle plus a
	// coverable cycle before the branch unit can see the CR bit.
	t[ir.OpICmp] = single("cmp", FXU, 1, 1)
	t[ir.OpFCmp] = single("fcmp", FPU, 1, 1)
	// The CR-logic unit combines condition bits (crand etc.); the
	// branch itself is free when resolved early (zero-cycle branch
	// folding) but occupies the branch unit one cycle.
	t[ir.OpBranch] = single("bc", BRU, 1, 0)
	t[ir.OpJump] = single("b", BRU, 1, 0)
	// External calls: modelled via the library cost table; the base
	// cost here is the linkage overhead.
	t[ir.OpCall] = []AtomicOp{{Name: "bl", Segments: []Segment{
		{Unit: BRU, Noncov: 1}, {Unit: FXU, Noncov: 4},
	}}}
	t[ir.OpLoadImm] = single("lil", FXU, 1, 0)
	return m
}

// ReferenceSuperScalar2 is the seed hand-coded wider hypothetical superscalar: two fixed-point
// pipes, two floating-point pipes, shared branch/CR units, dispatch
// width 6, same per-op latencies as POWER1. It exercises the
// multiple-pipes ("more bins") case of the cost model.
func ReferenceSuperScalar2() *Machine {
	m := ReferencePOWER1()
	m.Name = "SuperScalar2"
	m.UnitCounts = map[UnitKind]int{FXU: 2, FPU: 2, BRU: 1, CRU: 1}
	m.DispatchWidth = 6
	return m
}

// ReferenceScalar1 is the seed hand-coded conventional sequential machine: a single unit, no
// overlap, every operation fully noncoverable at its POWER1 latency.
// It doubles as the "operation-count based cost model" baseline: on
// this machine the Tetris model degenerates to summing latencies.
func ReferenceScalar1() *Machine {
	p := ReferencePOWER1()
	m := &Machine{
		Name:          "Scalar1",
		UnitCounts:    map[UnitKind]int{UNI: 1},
		DispatchWidth: 1,
		HasFMA:        false,
		BranchCost:    p.BranchCost,
		Table:         map[ir.Op][]AtomicOp{},
	}
	for op, seq := range p.Table {
		total := 0
		for _, a := range seq {
			total += a.Latency()
		}
		if total == 0 {
			total = 1
		}
		m.Table[op] = single(op.String(), UNI, total, 0)
	}
	return m
}
