package machine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"perfpredict/internal/source"
)

// SpecTemplate is a machine description with free parameters: a
// validated base spec plus ranges over pipe counts and dispatch width
// and alternative atomic expansions for selected operations. Expanding
// the template enumerates a canonical lattice of concrete Specs — the
// input of design-space exploration, where the paper's model is run
// backwards: instead of predicting one program on one machine, the
// machine space is searched for the cheapest configuration meeting a
// cost target.
//
// A template is data, exactly like a Spec: a strict-parsing,
// canonically-encoding JSON document. The base is given either inline
// ("base") or as a registered machine name ("base_machine") — exactly
// one of the two.
type SpecTemplate struct {
	// BaseMachine names a registered target to use as the base spec;
	// mutually exclusive with Base.
	BaseMachine string `json:"base_machine,omitempty"`
	// Base is the inline base spec; mutually exclusive with BaseMachine.
	Base *Spec `json:"base,omitempty"`
	// Dispatch, when present, ranges the dispatch width.
	Dispatch *IntRange `json:"dispatch,omitempty"`
	// Pipes ranges the pipe count of the named unit kinds; units not
	// listed keep the base count.
	Pipes map[string]IntRange `json:"pipes,omitempty"`
	// Ops lists alternative atomic expansions for selected operations
	// (e.g. a lower-latency multiplier): each expansion REPLACES the
	// base mapping for that op, and the alternatives are indexed in
	// list order. Include the base expansion explicitly if it should
	// stay in the lattice.
	Ops map[string][][]AtomicOpSpec `json:"ops,omitempty"`
	// Budget declares the hardware-budget scalar of each expanded
	// config (see BudgetOf). Nil means every pipe and every dispatch
	// slot costs 1.
	Budget *BudgetSpec `json:"budget,omitempty"`
}

// IntRange is an inclusive [Min, Max] integer range, encoded in JSON
// as a two-element array.
type IntRange struct {
	Min, Max int
}

// MarshalJSON renders the range as [min, max].
func (r IntRange) MarshalJSON() ([]byte, error) {
	return json.Marshal([2]int{r.Min, r.Max})
}

// UnmarshalJSON accepts exactly a two-element integer array.
func (r *IntRange) UnmarshalJSON(data []byte) error {
	var a [2]int
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&a); err != nil {
		return fmt.Errorf("range must be [min, max]: %w", err)
	}
	r.Min, r.Max = a[0], a[1]
	return nil
}

// BudgetSpec declares how a concrete config's hardware-budget scalar
// is computed: a weighted sum of pipe counts plus a weighted dispatch
// width. Weights default to 1; an explicit 0 excludes that resource
// from the budget.
type BudgetSpec struct {
	// DefaultPipeWeight prices one pipe of any kind not listed in
	// PipeWeights (nil = 1).
	DefaultPipeWeight *float64 `json:"default_pipe_weight,omitempty"`
	// PipeWeights prices one pipe of the named kind.
	PipeWeights map[string]float64 `json:"pipe_weights,omitempty"`
	// DispatchWeight prices one dispatch slot (nil = 1).
	DispatchWeight *float64 `json:"dispatch_weight,omitempty"`
}

// ParseTemplate decodes a spec template from its JSON form; unknown
// fields and trailing data are rejected. The result is not yet
// validated; call Validate (or Expand, which validates) before use.
func ParseTemplate(data []byte) (*SpecTemplate, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t SpecTemplate
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("spec template: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec template: trailing data after document")
	}
	return &t, nil
}

// Encode renders the template canonically (sorted object keys,
// two-space indent, trailing newline), like Spec.Encode.
func (t *SpecTemplate) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec template: %w", err)
	}
	return append(out, '\n'), nil
}

// ResolveBase returns the template's base spec: the inline spec, or
// the spec form of the registered machine BaseMachine names. Exactly
// one of the two must be set.
func (t *SpecTemplate) ResolveBase() (*Spec, error) {
	switch {
	case t.Base != nil && t.BaseMachine != "":
		return nil, fmt.Errorf("spec template: give base or base_machine, not both")
	case t.Base != nil:
		return t.Base, nil
	case t.BaseMachine != "":
		m, err := Lookup(t.BaseMachine)
		if err != nil {
			return nil, fmt.Errorf("spec template: %w", err)
		}
		return SpecOf(m), nil
	default:
		return nil, fmt.Errorf("spec template: no base spec (give base or base_machine)")
	}
}

// Validate checks the template's own invariants: the base resolves
// and validates, every range is sane (1 ≤ min ≤ max), every ranged
// unit and every op with alternatives exists in the base, every
// alternative expansion is nonempty, and budget weights are
// nonnegative. Per-cell validity (e.g. an op alternative demanding
// more pipes than a low end of a pipe range provides) is checked by
// Expand, which validates every concrete spec it produces.
func (t *SpecTemplate) Validate() error {
	base, err := t.ResolveBase()
	if err != nil {
		return err
	}
	if err := base.Validate(); err != nil {
		return fmt.Errorf("spec template: base: %w", err)
	}
	if r := t.Dispatch; r != nil {
		if r.Min < 1 || r.Min > r.Max {
			return fmt.Errorf("spec template: dispatch range [%d, %d], want 1 <= min <= max", r.Min, r.Max)
		}
	}
	for unit, r := range t.Pipes {
		if _, ok := base.Units[unit]; !ok {
			return fmt.Errorf("spec template: pipe range for unknown unit %q", unit)
		}
		if r.Min < 1 || r.Min > r.Max {
			return fmt.Errorf("spec template: pipe range %s [%d, %d], want 1 <= min <= max", unit, r.Min, r.Max)
		}
	}
	for op, alts := range t.Ops {
		if _, ok := base.Ops[op]; !ok {
			return fmt.Errorf("spec template: alternatives for unknown op %q", op)
		}
		if len(alts) == 0 {
			return fmt.Errorf("spec template: op %s lists no alternatives", op)
		}
		for i, alt := range alts {
			if len(alt) == 0 {
				return fmt.Errorf("spec template: op %s alternative %d is empty", op, i)
			}
		}
	}
	if b := t.Budget; b != nil {
		if b.DefaultPipeWeight != nil && *b.DefaultPipeWeight < 0 {
			return fmt.Errorf("spec template: negative default pipe weight")
		}
		if b.DispatchWeight != nil && *b.DispatchWeight < 0 {
			return fmt.Errorf("spec template: negative dispatch weight")
		}
		for unit, w := range b.PipeWeights {
			if _, ok := base.Units[unit]; !ok {
				return fmt.Errorf("spec template: pipe weight for unknown unit %q", unit)
			}
			if w < 0 {
				return fmt.Errorf("spec template: negative pipe weight for %s", unit)
			}
		}
	}
	return nil
}

// dimension is one free parameter of the lattice, in canonical order:
// dispatch first (when ranged), then pipe ranges sorted by unit name,
// then op alternatives sorted by op name. Values enumerate ascending
// (range min→max; alternative index 0→n−1).
type dimension struct {
	key  string // canonical choice key: "dispatch", "pipes.X", "ops.y"
	name string // display name for the cell-name suffix
	lo   int    // first value (range min; 0 for alternatives)
	n    int    // number of values
	op   string // nonempty for an op-alternative dimension
	unit string // nonempty for a pipe-range dimension
}

func (t *SpecTemplate) dimensions() []dimension {
	var dims []dimension
	if r := t.Dispatch; r != nil {
		dims = append(dims, dimension{key: "dispatch", name: "dispatch", lo: r.Min, n: r.Max - r.Min + 1})
	}
	units := make([]string, 0, len(t.Pipes))
	for u := range t.Pipes {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		r := t.Pipes[u]
		dims = append(dims, dimension{key: "pipes." + u, name: u, lo: r.Min, n: r.Max - r.Min + 1, unit: u})
	}
	ops := make([]string, 0, len(t.Ops))
	for op := range t.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		dims = append(dims, dimension{key: "ops." + op, name: op, lo: 0, n: len(t.Ops[op]), op: op})
	}
	return dims
}

// Size returns the number of concrete specs Expand enumerates (the
// lattice cell count), without building them. A template with no free
// parameters has size 1 (the base itself). Returns an error when the
// template is invalid or the product overflows practical bounds.
func (t *SpecTemplate) Size() (int, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	size := 1
	for _, d := range t.dimensions() {
		if d.n <= 0 {
			return 0, fmt.Errorf("spec template: empty dimension %s", d.key)
		}
		size *= d.n
		if size > 1<<24 {
			return 0, fmt.Errorf("spec template: lattice exceeds %d cells", 1<<24)
		}
	}
	return size, nil
}

// Expanded is one cell of the lattice: a concrete, validated spec
// plus the choice assignment that produced it.
type Expanded struct {
	// Spec is the concrete machine description; its Name is the base
	// name suffixed with the choices, so every cell is distinct.
	Spec *Spec
	// Choices maps each canonical dimension key ("dispatch",
	// "pipes.<unit>", "ops.<op>") to the chosen value: the dispatch
	// width, the pipe count, or the alternative index respectively.
	Choices map[string]int
}

// Expand enumerates the lattice in canonical order: dimensions as
// ordered by dimensions() (dispatch, then pipes by unit name, then
// ops by op name), values ascending, first dimension slowest
// (row-major). The enumeration is deterministic and duplicate-free —
// every cell's spec carries a distinct name, hence a distinct content
// fingerprint. Every produced spec is validated; a template whose
// cells cannot all be valid machines (e.g. an op alternative needing
// two pipes of a kind ranged down to one) fails here with the cell
// that broke.
func (t *SpecTemplate) Expand() ([]Expanded, error) {
	size, err := t.Size()
	if err != nil {
		return nil, err
	}
	base, err := t.ResolveBase()
	if err != nil {
		return nil, err
	}
	// Clone via the canonical encoding: cheap relative to pricing, and
	// guaranteed deep.
	baseData, err := base.Encode()
	if err != nil {
		return nil, err
	}
	dims := t.dimensions()
	out := make([]Expanded, 0, size)
	idx := make([]int, len(dims))
	for cell := 0; cell < size; cell++ {
		s, err := ParseSpec(baseData)
		if err != nil {
			return nil, fmt.Errorf("spec template: re-parsing base: %w", err)
		}
		choices := make(map[string]int, len(dims))
		var suffix bytes.Buffer
		for i, d := range dims {
			v := d.lo + idx[i]
			choices[d.key] = v
			if suffix.Len() > 0 {
				suffix.WriteByte(',')
			}
			switch {
			case d.op != "":
				fmt.Fprintf(&suffix, "%s@%d", d.name, v)
				s.Ops[d.op] = cloneAtomicOps(t.Ops[d.op][v])
			case d.unit != "":
				fmt.Fprintf(&suffix, "%s=%d", d.name, v)
				s.Units[d.unit] = v
			default:
				fmt.Fprintf(&suffix, "dispatch=%d", v)
				s.DispatchWidth = v
			}
		}
		if suffix.Len() > 0 {
			s.Name = s.Name + "[" + suffix.String() + "]"
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("spec template: cell %s: %w", s.Name, err)
		}
		out = append(out, Expanded{Spec: s, Choices: choices})
		// Odometer increment, last dimension fastest.
		for i := len(dims) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < dims[i].n {
				break
			}
			idx[i] = 0
		}
	}
	return out, nil
}

func cloneAtomicOps(seq []AtomicOpSpec) []AtomicOpSpec {
	out := make([]AtomicOpSpec, len(seq))
	for i, a := range seq {
		segs := make([]SegmentSpec, len(a.Segments))
		copy(segs, a.Segments)
		out[i] = AtomicOpSpec{Name: a.Name, Segments: segs}
	}
	return out
}

// BudgetOf computes the declared hardware-budget scalar of one
// concrete spec: Σ pipe-count × pipe-weight + dispatch-width ×
// dispatch-weight, with all weights defaulting to 1 when Budget is
// absent. This scalar — never a structural "more resources" ordering —
// is the resource coordinate of exploration's dominance test:
// scheduling is not monotone in resources (Graham's anomaly), so a
// bigger machine must prove itself on measured cost, not be presumed
// faster.
func (t *SpecTemplate) BudgetOf(s *Spec) float64 {
	pipeW := func(unit string) float64 {
		if t.Budget != nil {
			if w, ok := t.Budget.PipeWeights[unit]; ok {
				return w
			}
			if t.Budget.DefaultPipeWeight != nil {
				return *t.Budget.DefaultPipeWeight
			}
		}
		return 1
	}
	dispatchW := 1.0
	if t.Budget != nil && t.Budget.DispatchWeight != nil {
		dispatchW = *t.Budget.DispatchWeight
	}
	total := dispatchW * float64(s.DispatchWidth)
	units := make([]string, 0, len(s.Units))
	for u := range s.Units {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		total += pipeW(u) * float64(s.Units[u])
	}
	return total
}

// Fingerprint is the template's content identity, used in
// result-cache keys. The base is resolved first, so a template naming
// a registered machine and one inlining the identical spec share a
// fingerprint; everything else enters through the canonical encoding.
func (t *SpecTemplate) Fingerprint() (source.Fingerprint, error) {
	base, err := t.ResolveBase()
	if err != nil {
		return source.Fingerprint{}, err
	}
	resolved := *t
	resolved.Base, resolved.BaseMachine = base, ""
	data, err := resolved.Encode()
	if err != nil {
		return source.Fingerprint{}, err
	}
	return source.Fingerprint{}.MixString("machine-template/v1").MixString(string(data)), nil
}
