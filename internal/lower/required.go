package lower

import "perfpredict/internal/ir"

// RequiredOps returns every basic operation the translation module can
// emit — the contract a machine description's atomic-operation table
// must cover for lowering never to hit an unmapped op. It is the
// retargeting checklist of the paper's §2.2 ("defining the atomic
// operation mapping and the atomic operation cost table"): a new spec
// that maps these ops prices every F-lite program.
//
// The list mirrors the emit sites in expr.go, lower.go, and passes.go.
// ir.OpJump is the one opcode lowering never produces (loop back-edges
// are modeled by the OpBranch in LoopOverhead); machine validation
// still demands it so the reference pipeline and interpreter can
// execute arbitrary control flow.
func RequiredOps() []ir.Op {
	return []ir.Op{
		ir.OpIAdd, ir.OpISub, ir.OpIMul, ir.OpIMulSmall, ir.OpIDiv,
		ir.OpIMod, ir.OpINeg, ir.OpIAbs,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFMA, ir.OpFMS,
		ir.OpFNeg, ir.OpFAbs, ir.OpFSqrt, ir.OpFMin, ir.OpFMax,
		ir.OpItoF, ir.OpFtoI,
		ir.OpILoad, ir.OpIStore, ir.OpFLoad, ir.OpFStore, ir.OpAddr,
		ir.OpICmp, ir.OpFCmp, ir.OpBranch, ir.OpCall,
		ir.OpLoadImm,
	}
}
