package lower

import "perfpredict/internal/ir"

// deadStoreElim removes stores whose location is overwritten later in
// the block with no intervening load of the same address or call. This
// is the back-end behaviour that makes sum reductions cheap: in an
// unrolled `s = s + …; s = s + …` chain only the final store survives,
// the intermediate values staying in registers ("all but one store
// instruction can be eliminated by using registers", §2.2.2). Loads
// that forwarded from a removed store were already redirected to the
// stored register during translation, so removal is safe.
func deadStoreElim(b *ir.Block) {
	type pending struct{ idx int }
	lastStore := map[string]int{} // addr -> index of latest store
	dead := map[int]bool{}
	for i, in := range b.Instrs {
		switch {
		case in.Op.IsStore():
			if prev, ok := lastStore[in.Addr]; ok {
				dead[prev] = true
			}
			lastStore[in.Addr] = i
		case in.Op.IsLoad():
			// A load keeps the previous store to its address alive.
			delete(lastStore, in.Addr)
		case in.Op == ir.OpCall:
			// Calls may observe all memory.
			lastStore = map[string]int{}
		}
	}
	if len(dead) == 0 {
		return
	}
	out := b.Instrs[:0]
	for i, in := range b.Instrs {
		if !dead[i] {
			out = append(out, in)
		}
	}
	b.Instrs = out
}

// deadCodeElim removes instructions whose destination register is
// never read — in any of the given blocks — and which have no side
// effects (not stores, branches, or calls). The blocks form one
// extended region (preheader + body), so a preheader value consumed by
// the body stays alive. Iterates to a fixed point so chains of dead
// producers die.
func deadCodeElim(blocks ...*ir.Block) {
	for {
		used := map[ir.Reg]bool{}
		for _, b := range blocks {
			for _, in := range b.Instrs {
				for _, s := range in.Srcs {
					if s != ir.NoReg {
						used[s] = true
					}
				}
			}
		}
		removed := false
		for _, b := range blocks {
			out := b.Instrs[:0]
			for _, in := range b.Instrs {
				if in.Op.HasDst() && in.Dst != ir.NoReg && !used[in.Dst] &&
					!in.Op.IsMem() && !in.Op.IsBranch() && in.Op != ir.OpCall {
					removed = true
					continue
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
		if !removed {
			return
		}
	}
}
