package lower

import (
	"testing"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
)

// Affine subscript canonicalization: unrolled forms like x((i+1)+1)
// must produce the same address string as x(i+2), so CSE, dependence
// analysis and register promotion all see through them.
func TestSubscriptCanonicalization(t *testing.T) {
	src := `
program p
  integer i, n
  real a(100), b(100)
  do i = 1, n
    b(i) = a((i+1)+1) + a(i+2) + a(2+i) + a(i+3-1)
  end do
end
`
	lw := lowerBody(t, src, DefaultOptions())
	// All four references canonicalize to a(i+2): one load.
	loads := 0
	for _, in := range lw.Body.Instrs {
		if in.Op.IsLoad() {
			loads++
			if in.Addr != "a(i+2)" {
				t.Errorf("addr = %q, want a(i+2)", in.Addr)
			}
		}
	}
	if loads != 1 {
		t.Errorf("loads = %d, want 1 (canonical CSE)\n%s", loads, lw.Body)
	}
	// No explicit address arithmetic (all unit-stride affine).
	if lw.Body.Counts()[ir.OpAddr] != 0 {
		t.Errorf("addr ops emitted:\n%s", lw.Body)
	}
}

func TestSubscriptCanonNegativeAndScaled(t *testing.T) {
	src := `
program p
  integer i, n
  real a(300), b(100)
  do i = 1, n
    b(i) = a(2*i+1) + a(1+i*2) + a(3-i)
  end do
end
`
	lw := lowerBody(t, src, DefaultOptions())
	var addrs []string
	for _, in := range lw.Body.Instrs {
		if in.Op.IsLoad() {
			addrs = append(addrs, in.Addr)
		}
	}
	// 2*i+1 twice (CSE'd into one) + 3-i (= -i+3).
	if len(addrs) != 2 {
		t.Fatalf("addrs: %v\n%s", addrs, lw.Body)
	}
	seen := map[string]bool{}
	for _, a := range addrs {
		seen[a] = true
	}
	if !seen["a(2*i+1)"] {
		t.Errorf("missing canonical scaled form: %v", addrs)
	}
	if !seen["a(-i+3)"] {
		t.Errorf("missing canonical negated form: %v", addrs)
	}
	// Stride-2 addressing is not update-form: explicit addr arithmetic
	// appears for the scaled form.
	if lw.Body.Counts()[ir.OpAddr] == 0 {
		t.Errorf("stride-2 subscript should cost address arithmetic\n%s", lw.Body)
	}
}

// Promotion must see through rewritten subscripts: after unrolling,
// c((i+1),j)-style references still promote per distinct address.
func TestPromotionOnCanonicalAddrs(t *testing.T) {
	src := `
program p
  integer i, j, k, n
  real c(64,64), a(64,64)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k)
        c((i+1)-1,j) = c(i+0,j) * 2.0
      end do
    end do
  end do
end
`
	lw := lowerBody(t, src, DefaultOptions())
	// Both statements reference the same canonical c(i,j): one promoted
	// location, zero body stores.
	if len(lw.Promoted) != 1 || lw.Promoted[0].Addr != "c(i,j)" {
		t.Fatalf("promoted: %+v", lw.Promoted)
	}
	if lw.Body.Counts()[ir.OpFStore] != 0 {
		t.Errorf("stores left in body:\n%s", lw.Body)
	}
	if lw.Post.Counts()[ir.OpFStore] != 1 {
		t.Errorf("post:\n%s", lw.Post)
	}
}

// The register-pressure heuristic (§2.2.1) interacts sanely with the
// other passes: spills appear but the block still prices.
func TestRegisterPressureWithPromotion(t *testing.T) {
	src := `
program p
  integer i, n
  real s, a(100), b(100), c(100), d(100)
  do i = 1, n
    s = s + a(i) * b(i) + c(i) * d(i)
  end do
end
`
	opt := DefaultOptions()
	opt.RegisterPressure = 3
	lw := lowerBody(t, src, opt)
	ops := lw.Body.Counts()
	if ops[ir.OpFStore] == 0 {
		t.Errorf("no spill store forced: %v\n%s", ops, lw.Body)
	}
	// The accumulator is still promoted.
	found := false
	for _, pv := range lw.Promoted {
		if pv.Addr == "s" {
			found = true
		}
	}
	if !found {
		t.Errorf("s not promoted: %+v", lw.Promoted)
	}
}

// Scalar1 lowering must not emit FMA, and promotion still works there.
func TestScalarMachinePromotion(t *testing.T) {
	tbl, body := prep(t, `
program p
  integer i, n
  real s, a(100)
  do i = 1, n
    s = s + a(i)
  end do
end
`)
	stmts, vars := innermost(body)
	tr := New(tbl, machine.NewScalar1(), DefaultOptions())
	lw, err := tr.Body(stmts, vars)
	if err != nil {
		t.Fatal(err)
	}
	if lw.Body.Counts()[ir.OpFMA] != 0 {
		t.Error("FMA on scalar machine")
	}
	if len(lw.Promoted) != 1 {
		t.Errorf("promotion should be machine independent: %+v", lw.Promoted)
	}
}
