package lower

import (
	"strings"
	"testing"

	"perfpredict/internal/ir"
	"perfpredict/internal/kernels"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

// prep parses and analyzes a program, returning the table and the body.
func prep(t *testing.T, src string) (*sem.Table, []source.Stmt) {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return tbl, p.Body
}

// innermost returns the innermost loop body and the loop variables
// enclosing it.
func innermost(stmts []source.Stmt) ([]source.Stmt, []string) {
	var vars []string
	for {
		if len(stmts) == 1 {
			if loop, ok := stmts[0].(*source.DoLoop); ok {
				vars = append(vars, loop.Var)
				stmts = loop.Body
				continue
			}
		}
		return stmts, vars
	}
}

func lowerBody(t *testing.T, src string, opt Options) *Lowered {
	t.Helper()
	tbl, body := prep(t, src)
	stmts, vars := innermost(body)
	tr := New(tbl, machine.NewPOWER1(), opt)
	lw, err := tr.Body(stmts, vars)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return lw
}

func countOps(b *ir.Block) map[ir.Op]int { return b.Counts() }

const daxpySrc = `
subroutine daxpy(n, a)
  integer n, i
  real a, x(1000), y(1000)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end
`

func TestDaxpyLowering(t *testing.T) {
	lw := lowerBody(t, daxpySrc, DefaultOptions())
	// Invariant scalar a hoisted to the preheader.
	preOps := countOps(lw.Pre)
	if preOps[ir.OpFLoad] != 1 {
		t.Errorf("pre: %v (want 1 hoisted load)", lw.Pre)
	}
	bodyOps := countOps(lw.Body)
	if bodyOps[ir.OpFLoad] != 2 || bodyOps[ir.OpFMA] != 1 || bodyOps[ir.OpFStore] != 1 {
		t.Errorf("body ops: %v\n%s", bodyOps, lw.Body)
	}
	if len(lw.Body.Instrs) != 4 {
		t.Errorf("body length %d, want 4\n%s", len(lw.Body.Instrs), lw.Body)
	}
}

func TestNoCodeMotionKeepsLoadInBody(t *testing.T) {
	opt := DefaultOptions()
	opt.CodeMotion = false
	lw := lowerBody(t, daxpySrc, opt)
	if len(lw.Pre.Instrs) != 0 {
		t.Errorf("pre should be empty: %s", lw.Pre)
	}
	if countOps(lw.Body)[ir.OpFLoad] != 3 {
		t.Errorf("body: %s", lw.Body)
	}
}

func TestNoFMAKeepsMulAdd(t *testing.T) {
	opt := DefaultOptions()
	opt.FuseFMA = false
	lw := lowerBody(t, daxpySrc, opt)
	ops := countOps(lw.Body)
	if ops[ir.OpFMA] != 0 || ops[ir.OpFMul] != 1 || ops[ir.OpFAdd] != 1 {
		t.Errorf("ops: %v", ops)
	}
}

func TestMachineWithoutFMA(t *testing.T) {
	tbl, body := prep(t, daxpySrc)
	stmts, vars := innermost(body)
	tr := New(tbl, machine.NewScalar1(), DefaultOptions()) // no FMA
	lw, err := tr.Body(stmts, vars)
	if err != nil {
		t.Fatal(err)
	}
	if countOps(lw.Body)[ir.OpFMA] != 0 {
		t.Error("FMA emitted for non-FMA machine")
	}
}

const matmulSrc = `
program matmul
  integer n, i, j, k
  real a(100,100), b(100,100), c(100,100)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
`

func TestMatmulInnerBlock(t *testing.T) {
	lw := lowerBody(t, matmulSrc, DefaultOptions())
	ops := countOps(lw.Body)
	// c(i,j) is promoted to a register over the k loop (sum-reduction
	// recognition): the body keeps only the a/b loads and the FMA.
	if ops[ir.OpFLoad] != 2 || ops[ir.OpFMA] != 1 || ops[ir.OpFStore] != 0 {
		t.Errorf("body ops: %v\n%s", ops, lw.Body)
	}
	if countOps(lw.PerEntry)[ir.OpFLoad] != 1 {
		t.Errorf("per-entry: %s", lw.PerEntry)
	}
	if countOps(lw.Post)[ir.OpFStore] != 1 {
		t.Errorf("post: %s", lw.Post)
	}
	if len(lw.Promoted) != 1 || lw.Promoted[0].Addr != "c(i,j)" {
		t.Errorf("promoted: %+v", lw.Promoted)
	}
	// With scalar replacement off, the classic 3-load/1-store body.
	opt := DefaultOptions()
	opt.ScalarReplace = false
	lw2 := lowerBody(t, matmulSrc, opt)
	ops2 := countOps(lw2.Body)
	if ops2[ir.OpFLoad] != 3 || ops2[ir.OpFMA] != 1 || ops2[ir.OpFStore] != 1 {
		t.Errorf("no-promo ops: %v\n%s", ops2, lw2.Body)
	}
}

func TestReductionDSE(t *testing.T) {
	src := `
program red
  integer i, n
  real s, a(100), b(100)
  do i = 1, n
    s = s + a(i)
    s = s + b(i)
  end do
end
`
	lw := lowerBody(t, src, DefaultOptions())
	ops := countOps(lw.Body)
	// Full reduction recognition: s lives in a register; the body has
	// only the element loads and adds, with one per-entry load and one
	// post store.
	if ops[ir.OpFStore] != 0 || ops[ir.OpFLoad] != 2 {
		t.Errorf("body ops: %v\n%s", ops, lw.Body)
	}
	if countOps(lw.PerEntry)[ir.OpFLoad] != 1 || countOps(lw.Post)[ir.OpFStore] != 1 {
		t.Errorf("promotion blocks:\n%s\n%s", lw.PerEntry, lw.Post)
	}
	// Without promotion, DSE still removes the intermediate store.
	opt := DefaultOptions()
	opt.ScalarReplace = false
	lw1 := lowerBody(t, src, opt)
	ops1 := countOps(lw1.Body)
	if ops1[ir.OpFStore] != 1 || ops1[ir.OpFLoad] != 3 {
		t.Errorf("DSE-only ops: %v\n%s", ops1, lw1.Body)
	}
	// Without either, both stores remain.
	opt.DeadStoreElim = false
	lw2 := lowerBody(t, src, opt)
	if countOps(lw2.Body)[ir.OpFStore] != 2 {
		t.Errorf("all off: %s", lw2.Body)
	}
}

func TestCSEDedupesLoads(t *testing.T) {
	src := `
program p
  integer i, n
  real a(100), b(100), c(100)
  do i = 1, n
    b(i) = a(i) * a(i) + a(i)
  end do
end
`
	lw := lowerBody(t, src, DefaultOptions())
	if n := countOps(lw.Body)[ir.OpFLoad]; n != 1 {
		t.Errorf("loads = %d, want 1 (CSE)\n%s", n, lw.Body)
	}
	opt := DefaultOptions()
	opt.CSE = false
	lw2 := lowerBody(t, src, opt)
	if n := countOps(lw2.Body)[ir.OpFLoad]; n != 3 {
		t.Errorf("CSE off: loads = %d, want 3", n)
	}
}

func TestStoreKillsCSE(t *testing.T) {
	src := `
program p
  integer i, n
  real a(100), b(100)
  do i = 1, n
    b(i) = a(i)
    a(i) = 2.0
    b(i) = a(i)
  end do
end
`
	lw := lowerBody(t, src, DefaultOptions())
	// After the store to a(i), its value is forwarded from the stored
	// register, so no reload — but the final b(i) value must be 2.0's
	// register, which DSE+forwarding handles; the first b(i) store is
	// dead.
	ops := countOps(lw.Body)
	if ops[ir.OpFStore] != 2 { // a(i) and final b(i)
		t.Errorf("stores = %d\n%s", ops[ir.OpFStore], lw.Body)
	}
}

func TestSmallMultiplierSpecialization(t *testing.T) {
	src := `
program p
  integer i, j, n
  integer a(100)
  do i = 1, n
    j = i * 3
    a(j) = j * 1000
  end do
end
`
	lw := lowerBody(t, src, DefaultOptions())
	ops := countOps(lw.Body)
	if ops[ir.OpIMulSmall] != 1 {
		t.Errorf("imuls = %d, want 1\n%s", ops[ir.OpIMulSmall], lw.Body)
	}
	if ops[ir.OpIMul] != 1 {
		t.Errorf("imul = %d, want 1\n%s", ops[ir.OpIMul], lw.Body)
	}
}

func TestPowerLowering(t *testing.T) {
	src := `
program p
  integer i, n
  real x, y, a(10)
  do i = 1, n
    x = y**2 + y**3
  end do
end
`
	lw := lowerBody(t, src, DefaultOptions())
	// y**2 = 1 mul; y**3 = 2 muls, but CSE shares y and y*y: y2 = y*y
	// (1 mul), y3 = y2*y (1 mul). Total 2 muls. All invariant → in pre.
	pre := countOps(lw.Pre)
	if pre[ir.OpFMul] != 2 {
		t.Errorf("pre muls = %d\npre:\n%s", pre[ir.OpFMul], lw.Pre)
	}
	if pre[ir.OpCall] != 0 {
		t.Error("small powers should not call pow")
	}
}

func TestGeneralPowerCallsLibrary(t *testing.T) {
	src := `
program p
  integer i, n
  real x, y
  do i = 1, n
    x = y**i
  end do
end
`
	lw := lowerBody(t, src, DefaultOptions())
	if countOps(lw.Body)[ir.OpCall] != 1 {
		t.Errorf("want pow call\n%s", lw.Body)
	}
}

func TestRegisterPressureSpills(t *testing.T) {
	src := `
program p
  integer i, n
  real a(100), b(100), c(100), d(100), e(100), f(100)
  do i = 1, n
    f(i) = a(i) + b(i) + c(i) + d(i) + e(i)
  end do
end
`
	opt := DefaultOptions()
	opt.RegisterPressure = 2
	lw := lowerBody(t, src, opt)
	ops := countOps(lw.Body)
	// 5 loads → 2 spill stores forced, plus the real store.
	if ops[ir.OpFStore] != 3 {
		t.Errorf("stores = %d, want 3 (2 spills)\n%s", ops[ir.OpFStore], lw.Body)
	}
}

func TestConditionLowering(t *testing.T) {
	src := `
program p
  integer i, k, n
  real x
  do i = 1, n
    x = 1.0
  end do
end
`
	tbl, _ := prep(t, src)
	tr := New(tbl, machine.NewPOWER1(), DefaultOptions())
	cond := &source.BinExpr{
		Kind: source.BinLE,
		L:    &source.VarRef{Name: "i"},
		R:    &source.VarRef{Name: "k"},
	}
	lw, err := tr.Condition(cond, []string{"i"})
	if err != nil {
		t.Fatal(err)
	}
	ops := countOps(lw.Body)
	if ops[ir.OpICmp] != 1 || ops[ir.OpBranch] != 1 {
		t.Errorf("cond ops: %v\n%s", ops, lw.Body)
	}
	// k is loop-invariant: its load is hoisted into the one-time bin.
	if countOps(lw.Pre)[ir.OpILoad] != 1 {
		t.Errorf("pre ops: %v\n%s", countOps(lw.Pre), lw.Pre)
	}
}

func TestCompoundConditionLowering(t *testing.T) {
	tbl, _ := prep(t, "program p\n integer i, k, n\n real x\n x = 1.0\nend\n")
	tr := New(tbl, machine.NewPOWER1(), DefaultOptions())
	cond := &source.BinExpr{
		Kind: source.BinAnd,
		L: &source.BinExpr{Kind: source.BinGT,
			L: &source.VarRef{Name: "i"}, R: &source.NumLit{Value: 0}},
		R: &source.BinExpr{Kind: source.BinLT,
			L: &source.VarRef{Name: "i"}, R: &source.VarRef{Name: "n"}},
	}
	lw, err := tr.Condition(cond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if countOps(lw.Body)[ir.OpICmp] != 2 {
		t.Errorf("want 2 compares\n%s", lw.Body)
	}
}

func TestIntrinsicLowering(t *testing.T) {
	src := `
program p
  integer i, n, m
  real x, y, a(100)
  do i = 1, n
    a(i) = sqrt(abs(x)) + max(x, y) + mod(i, 4) + sin(y)
  end do
end
`
	lw := lowerBody(t, src, DefaultOptions())
	all := countOps(lw.Body)
	for op, c := range countOps(lw.Pre) {
		all[op] += c
	}
	if all[ir.OpFSqrt] != 1 || all[ir.OpFAbs] != 1 || all[ir.OpFMax] != 1 {
		t.Errorf("ops: %v", all)
	}
	if all[ir.OpIMod] != 1 {
		t.Errorf("mod: %v", all)
	}
	if all[ir.OpCall] != 1 { // sin
		t.Errorf("call: %v", all)
	}
	if all[ir.OpItoF] != 1 { // mod result converted to real for the add
		t.Errorf("itof: %v", all)
	}
}

func TestSubscriptAddressing(t *testing.T) {
	// Affine subscripts are free; a(i*2) needs explicit arithmetic.
	src := `
program p
  integer i, n
  real a(100), b(100)
  do i = 1, n
    b(i) = a(i*2)
  end do
end
`
	lw := lowerBody(t, src, DefaultOptions())
	ops := countOps(lw.Body)
	if ops[ir.OpAddr] != 1 {
		t.Errorf("addr ops = %d, want 1\n%s", ops[ir.OpAddr], lw.Body)
	}
	if ops[ir.OpIMulSmall]+ops[ir.OpIMul] != 1 {
		t.Errorf("subscript multiply missing: %v", ops)
	}
	// Affine forms are free.
	src2 := `
program p
  integer i, n
  real a(100), b(100)
  do i = 1, n
    b(i) = a(i+1) + a(i-1)
  end do
end
`
	lw2 := lowerBody(t, src2, DefaultOptions())
	if countOps(lw2.Body)[ir.OpAddr] != 0 {
		t.Errorf("affine subscripts should be free\n%s", lw2.Body)
	}
}

func TestAddressStringsCanonical(t *testing.T) {
	lw := lowerBody(t, matmulSrc, DefaultOptions())
	var addrs []string
	for _, b := range []*ir.Block{lw.PerEntry, lw.Body, lw.Post} {
		for _, in := range b.Instrs {
			if in.Op.IsMem() {
				addrs = append(addrs, in.Addr)
			}
		}
	}
	joined := strings.Join(addrs, " ")
	for _, want := range []string{"c(i,j)", "a(i,k)", "b(k,j)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in %v", want, addrs)
		}
	}
}

func TestCallClobbersCSE(t *testing.T) {
	src := `
program p
  integer i, n
  real a(100), b(100)
  do i = 1, n
    b(i) = a(i)
    call touch(a)
    b(i) = a(i)
  end do
end
`
	lw := lowerBody(t, src, DefaultOptions())
	if n := countOps(lw.Body)[ir.OpFLoad]; n != 2 {
		t.Errorf("loads = %d, want 2 (reload after call)\n%s", n, lw.Body)
	}
}

func TestLoopOverheadBlock(t *testing.T) {
	b := LoopOverhead()
	ops := b.Counts()
	// Branch-on-count: increment for addressing + the counted branch,
	// no compare (§2.2.2 branch optimization).
	if ops[ir.OpIAdd] != 1 || ops[ir.OpBranch] != 1 || ops[ir.OpICmp] != 0 {
		t.Errorf("loop overhead: %v", ops)
	}
}

func TestBodyRejectsCompoundStatements(t *testing.T) {
	tbl, body := prep(t, `
program p
  integer i, n
  real x
  do i = 1, n
    x = 1.0
  end do
end
`)
	tr := New(tbl, machine.NewPOWER1(), DefaultOptions())
	if _, err := tr.Body(body, nil); err == nil {
		t.Error("expected error lowering a loop as straight-line code")
	}
}

func TestParameterConstantsAreImmediates(t *testing.T) {
	src := `
program p
  integer i, n, c
  parameter (c = 5)
  integer a(100)
  do i = 1, n
    a(i) = i * c
  end do
end
`
	lw := lowerBody(t, src, DefaultOptions())
	ops := countOps(lw.Body)
	if ops[ir.OpILoad] != 0 {
		t.Errorf("parameter should not load from memory: %v\n%s", ops, lw.Body)
	}
	if ops[ir.OpIMulSmall] != 1 {
		t.Errorf("c=5 should be a small multiplier: %v", ops)
	}
}

func TestNotHoistedWhenKilled(t *testing.T) {
	src := `
program p
  integer i, n
  real s, a(100)
  do i = 1, n
    a(i) = s
    s = s + 1.0
  end do
end
`
	lw := lowerBody(t, src, DefaultOptions())
	// s is assigned in the body: its load must not be hoisted into the
	// one-time bin (the FP constant 1.0 legitimately is); instead it is
	// register-promoted with a per-entry load.
	for _, in := range lw.Pre.Instrs {
		if in.Addr == "s" {
			t.Errorf("killed scalar hoisted:\n%s", lw.Pre)
		}
	}
	loads := 0
	for _, in := range lw.PerEntry.Instrs {
		if in.Op.IsLoad() && in.Addr == "s" {
			loads++
		}
	}
	if loads != 1 {
		t.Errorf("s per-entry loads = %d, want 1\n%s", loads, lw.PerEntry)
	}
	stores := 0
	for _, in := range lw.Post.Instrs {
		if in.Op.IsStore() && in.Addr == "s" {
			stores++
		}
	}
	if stores != 1 {
		t.Errorf("s post stores = %d, want 1\n%s", stores, lw.Post)
	}
}

// RequiredOps is the retargeting contract: every op the lowering of
// the embedded kernels actually emits must be in the list, and the
// list must contain no duplicates.
func TestRequiredOpsContract(t *testing.T) {
	required := make(map[ir.Op]bool)
	for _, op := range RequiredOps() {
		if required[op] {
			t.Errorf("RequiredOps lists %s twice", op)
		}
		required[op] = true
	}
	checkBlock := func(name string, b *ir.Block) {
		if b == nil {
			return
		}
		for _, inst := range b.Instrs {
			if !required[inst.Op] {
				t.Errorf("%s: lowering emitted %s, absent from RequiredOps", name, inst.Op)
			}
		}
	}
	for _, k := range kernels.All() {
		p, tbl, err := k.Parse()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		stmts, vars := innermost(p.Body)
		lw, err := New(tbl, machine.NewPOWER1(), DefaultOptions()).Body(stmts, vars)
		if err != nil {
			continue // kernels outside the lowerable subset prove nothing here
		}
		checkBlock(k.Name, lw.Body)
		checkBlock(k.Name, lw.Pre)
	}
}
