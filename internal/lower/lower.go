// Package lower implements the instruction translation module of Wang
// (PLDI 1994, §2.2): it converts F-lite statements into basic
// operations (the *operation specialization mapping*, language
// dependent but architecture independent) and, in doing so, imitates
// the low-level optimizations a compiler back-end would perform —
// common-subexpression elimination, code motion of loop invariants,
// dead-store/dead-code elimination, fused multiply-add recognition,
// the small-multiplier integer-multiply specialization, and the
// register-pressure heuristic that forces a store after a number of
// loads. The architecture-dependent atomic operation mapping lives in
// package machine; this package only chooses *which* basic operations
// the generated code would contain.
package lower

import (
	"fmt"
	"strings"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

// Options are the back-end capability flags the cost model is tuned
// with ("flags representing the optimization capabilities of the
// back-end are defined and used for tuning the cost model", §2.2.2).
type Options struct {
	// CSE evaluates common subexpressions once.
	CSE bool
	// CodeMotion hoists loop-invariant loads and expressions into the
	// one-time (preheader) bin.
	CodeMotion bool
	// FuseFMA recognizes a*b±c as fused multiply-add when the machine
	// supports it.
	FuseFMA bool
	// DeadStoreElim removes stores overwritten within the block —
	// the mechanism behind sum-reduction recognition ("all but one
	// store instruction can be eliminated by using registers").
	DeadStoreElim bool
	// RegisterPressure, when positive, forces one spill store per that
	// many loads (§2.2.1's limited-register heuristic). Zero disables.
	RegisterPressure int
	// ScalarReplace promotes memory locations whose address is
	// invariant in the innermost loop — scalar accumulators and array
	// elements such as c(i,j) in a k-loop — into registers, loading
	// once per loop entry and storing once per exit. This is the
	// paper's sum-reduction recognition: "all but one store instruction
	// can be eliminated by using registers" (§2.2.2).
	ScalarReplace bool
}

// DefaultOptions enables every imitation the IBM xlf back-end performs.
func DefaultOptions() Options {
	return Options{CSE: true, CodeMotion: true, FuseFMA: true, DeadStoreElim: true, ScalarReplace: true}
}

// Lowered is the result of translating a straight-line statement list.
type Lowered struct {
	// Body holds the per-iteration operations.
	Body *ir.Block
	// Pre holds hoisted one-time operations (the second functional bin
	// of §2.2.2, "used to count the one-time and iterative costs
	// separately").
	Pre *ir.Block
	// Refs maps memory-instruction RefIDs back to the source-level
	// array reference, letting the interpreter concretize addresses
	// when replaying the block dynamically.
	Refs map[int32]*source.ArrayRef
	// PerEntry holds register-promotion loads executed once per entry
	// of the innermost enclosing loop; Post holds the matching final
	// stores at loop exit (sum-reduction recognition).
	PerEntry *ir.Block
	Post     *ir.Block
	// Promoted describes the promoted locations: the register their
	// per-entry load defines and the register holding the final value.
	Promoted []PromotedVar
}

// PromotedVar is one register-promoted memory location.
type PromotedVar struct {
	Addr string
	Base string
	// InReg is defined by the PerEntry load (NoReg when the first
	// access is a write and no initial load is needed).
	InReg ir.Reg
	// OutReg holds the final value the Post store writes (NoReg when
	// the location is never written).
	OutReg ir.Reg
}

// Translator lowers statements for one program unit on one machine.
type Translator struct {
	tbl *sem.Table
	m   *machine.Machine
	opt Options

	nextReg ir.Reg
	// cse maps expression keys to the register holding their value.
	cse map[string]ir.Reg
	// preCSE is the preheader's value map (survives body resets).
	preCSE map[string]ir.Reg

	body     *ir.Block
	pre      *ir.Block
	perEntry *ir.Block
	post     *ir.Block

	loopVars   map[string]bool
	innerVar   string          // innermost enclosing loop variable
	killedVars map[string]bool // scalars assigned in the body
	killedArrs map[string]bool // arrays stored in the body

	// promo tracks register-promoted locations: addr -> state.
	promo      map[string]*promoState
	promoOrder []string
	promotable map[string]promoInfo

	loadCount int

	nextRefID int32
	refs      map[int32]*source.ArrayRef

	// Memoized canonical strings. AST nodes are immutable and the
	// symbol table is fixed for the translator's lifetime, so subscript
	// normal forms and array address strings depend only on the node
	// pointer and survive resets. CSE keys additionally depend on the
	// enclosing loop-variable set, so keyCache is invalidated whenever
	// reset() is handed a different loopVars list (prevLoopVars tracks
	// the one the cache was built under).
	subCache     map[source.Expr]subEntry
	addrCache    map[*source.ArrayRef]string
	keyCache     map[source.Expr]keyEntry
	prevLoopVars []string
}

// subEntry is a memoized subscriptString result.
type subEntry struct {
	s     string
	cheap bool
}

// keyEntry is a memoized exprKey result.
type keyEntry struct {
	s  string
	ok bool
}

// New creates a translator.
func New(tbl *sem.Table, m *machine.Machine, opt Options) *Translator {
	return &Translator{
		tbl: tbl, m: m, opt: opt,
		preCSE:    map[string]ir.Reg{},
		subCache:  map[source.Expr]subEntry{},
		addrCache: map[*source.ArrayRef]string{},
		keyCache:  map[source.Expr]keyEntry{},
	}
}

// tagRef registers a source array reference and returns its RefID.
func (tr *Translator) tagRef(a *source.ArrayRef) int32 {
	if tr.refs == nil {
		tr.refs = map[int32]*source.ArrayRef{}
	}
	tr.nextRefID++
	tr.refs[tr.nextRefID] = a
	return tr.nextRefID
}

func (tr *Translator) newReg() ir.Reg {
	r := tr.nextReg
	tr.nextReg++
	return r
}

// promoState is the live register of one promoted location.
type promoState struct {
	reg   ir.Reg
	inReg ir.Reg
	dirty bool
	ty    source.Type
	base  string
	refID int32
}

// promoInfo marks an address as promotable with its element type.
type promoInfo struct {
	ty   source.Type
	base string
}

// Body lowers a straight-line statement list (assignments and calls)
// that executes inside the given enclosing loop variables. Nested
// control flow must be split by the caller (package aggregate) before
// lowering.
func (tr *Translator) Body(stmts []source.Stmt, loopVars []string) (*Lowered, error) {
	tr.reset(loopVars)
	tr.killedVars, tr.killedArrs = killedSets(stmts)
	if tr.opt.ScalarReplace {
		tr.promotable = tr.scanPromotable(stmts)
	}

	for _, s := range stmts {
		if err := tr.stmt(s); err != nil {
			return nil, err
		}
	}
	lw := &Lowered{Body: tr.body, Pre: tr.pre, PerEntry: tr.perEntry, Post: tr.post, Refs: tr.refs}
	// Flush dirty promoted values to the post block.
	for _, addr := range tr.promoOrder {
		st := tr.promo[addr]
		pv := PromotedVar{Addr: addr, Base: st.base, InReg: st.inReg, OutReg: ir.NoReg}
		if st.dirty {
			op := ir.OpFStore
			if st.ty == source.TypeInteger {
				op = ir.OpIStore
			}
			tr.post.Append(ir.Instr{Op: op, Srcs: []ir.Reg{st.reg}, Addr: addr, Base: st.base, RefID: st.refID})
			pv.OutReg = st.reg
		}
		lw.Promoted = append(lw.Promoted, pv)
	}
	if tr.opt.DeadStoreElim {
		deadStoreElim(tr.body)
	}
	deadCodeElim(tr.pre, tr.perEntry, tr.body, tr.post)
	return lw, nil
}

// reset prepares translator state for one lowering pass.
func (tr *Translator) reset(loopVars []string) {
	tr.body = &ir.Block{}
	tr.pre = &ir.Block{}
	tr.perEntry = &ir.Block{}
	tr.post = &ir.Block{}
	tr.cse = map[string]ir.Reg{}
	tr.preCSE = map[string]ir.Reg{}
	tr.loadCount = 0
	tr.loopVars = map[string]bool{}
	tr.innerVar = ""
	for _, v := range loopVars {
		tr.loopVars[v] = true
	}
	if !equalStrings(tr.prevLoopVars, loopVars) {
		clear(tr.keyCache)
		tr.prevLoopVars = append(tr.prevLoopVars[:0], loopVars...)
	}
	if len(loopVars) > 0 {
		tr.innerVar = loopVars[len(loopVars)-1]
	}
	tr.promo = map[string]*promoState{}
	tr.promoOrder = nil
	tr.promotable = nil
	tr.killedVars, tr.killedArrs = map[string]bool{}, map[string]bool{}
}

// scanPromotable finds memory locations safe to keep in registers for
// the duration of the innermost loop: every reference to the location's
// array (or scalar) must use an address that does not involve the
// innermost loop variable or any scalar assigned in the block, with
// cheap (analyzable) subscripts; blocks containing calls promote
// nothing.
func (tr *Translator) scanPromotable(stmts []source.Stmt) map[string]promoInfo {
	if tr.innerVar == "" {
		return nil
	}
	type refUse struct {
		addr string
		ok   bool
		ty   source.Type
	}
	byBase := map[string][]refUse{}
	scalarUse := map[string]bool{} // scalars read or written
	hasCall := false
	var walkExpr func(e source.Expr)
	walkExpr = func(e source.Expr) {
		switch x := e.(type) {
		case *source.ArrayRef:
			use := refUse{}
			sym := tr.tbl.Lookup(x.Name)
			if sym != nil {
				use.ty = sym.Type
			}
			parts := make([]string, len(x.Idx))
			good := true
			for i, ix := range x.Idx {
				str, cheap := tr.subscriptString(ix)
				parts[i] = str
				if !cheap || tr.subscriptBlocked(ix) {
					good = false
				}
				walkExpr(ix)
			}
			use.ok = good
			if good {
				use.addr = x.Name + "(" + strings.Join(parts, ",") + ")"
			}
			byBase[x.Name] = append(byBase[x.Name], use)
		case *source.VarRef:
			scalarUse[x.Name] = true
		case *source.BinExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *source.UnExpr:
			walkExpr(x.X)
		case *source.IntrinsicCall:
			for _, a := range x.Args {
				walkExpr(a)
			}
		}
	}
	var walk func(list []source.Stmt)
	walk = func(list []source.Stmt) {
		for _, s := range list {
			switch x := s.(type) {
			case *source.Assign:
				walkExpr(x.LHS)
				walkExpr(x.RHS)
			case *source.CallStmt:
				hasCall = true
			case *source.IfStmt:
				walkExpr(x.Cond)
				walk(x.Then)
				walk(x.Else)
			}
		}
	}
	walk(stmts)
	if hasCall {
		return nil
	}
	out := map[string]promoInfo{}
	for base, uses := range byBase {
		sym := tr.tbl.Lookup(base)
		if sym == nil {
			continue
		}
		allOK := true
		for _, u := range uses {
			if !u.ok {
				allOK = false
				break
			}
		}
		if !allOK {
			continue
		}
		for _, u := range uses {
			out[u.addr] = promoInfo{ty: sym.Type, base: base}
		}
	}
	// Scalars assigned in the block (accumulators) are promotable too,
	// unless they appear in a promoted array's subscripts (they don't:
	// subscriptBlocked rejects killed scalars).
	for name := range tr.killedVars {
		if tr.loopVars[name] {
			continue
		}
		sym := tr.tbl.Lookup(name)
		if sym == nil || sym.IsArray() || sym.IsConst {
			continue
		}
		if !scalarUse[name] {
			continue
		}
		out[name] = promoInfo{ty: sym.Type, base: name}
	}
	return out
}

// subscriptBlocked reports subscripts that reference the innermost loop
// variable or a scalar assigned in the block.
func (tr *Translator) subscriptBlocked(e source.Expr) bool {
	blocked := false
	var walk func(x source.Expr)
	walk = func(x source.Expr) {
		switch y := x.(type) {
		case *source.VarRef:
			if y.Name == tr.innerVar || tr.killedVars[y.Name] {
				blocked = true
			}
		case *source.ArrayRef:
			blocked = true // indirect subscripts block promotion
		case *source.BinExpr:
			walk(y.L)
			walk(y.R)
		case *source.UnExpr:
			walk(y.X)
		case *source.IntrinsicCall:
			blocked = true
		}
	}
	walk(e)
	return blocked
}

// promotedLoad returns the register of a promoted location, emitting
// the per-entry load on first touch.
func (tr *Translator) promotedLoad(addr string, info promoInfo, refID int32) ir.Reg {
	if st, ok := tr.promo[addr]; ok {
		return st.reg
	}
	op := ir.OpFLoad
	if info.ty == source.TypeInteger {
		op = ir.OpILoad
	}
	dst := tr.newReg()
	tr.perEntry.Append(ir.Instr{Op: op, Dst: dst, Addr: addr, Base: info.base, RefID: refID})
	tr.promo[addr] = &promoState{reg: dst, inReg: dst, ty: info.ty, base: info.base, refID: refID}
	tr.promoOrder = append(tr.promoOrder, addr)
	return dst
}

// promotedStore records a new value for a promoted location.
func (tr *Translator) promotedStore(addr string, info promoInfo, val ir.Reg, refID int32) {
	st, ok := tr.promo[addr]
	if !ok {
		st = &promoState{inReg: ir.NoReg, ty: info.ty, base: info.base, refID: refID}
		tr.promo[addr] = st
		tr.promoOrder = append(tr.promoOrder, addr)
	}
	if st.refID == 0 {
		st.refID = refID
	}
	st.reg = val
	st.dirty = true
}

// Condition lowers a logical expression into compare + branch
// operations, returning the block (used by the aggregation module for
// IF statements and loop back-branches).
func (tr *Translator) Condition(cond source.Expr, loopVars []string) (*Lowered, error) {
	tr.reset(loopVars)
	if err := tr.lowerCondBranch(cond); err != nil {
		return nil, err
	}
	deadCodeElim(tr.pre, tr.body)
	return &Lowered{Body: tr.body, Pre: tr.pre, PerEntry: tr.perEntry, Post: tr.post, Refs: tr.refs}, nil
}

// ExprOnly lowers an expression for its evaluation cost (used by the
// aggregation module to price loop-bound computations): the value is
// kept alive by a synthetic sink store, which is then dropped so only
// the evaluation operations remain.
func (tr *Translator) ExprOnly(e source.Expr, loopVars []string) (*Lowered, error) {
	tr.reset(loopVars)
	val, _, err := tr.expr(e)
	if err != nil {
		return nil, err
	}
	tr.body.Append(ir.Instr{Op: ir.OpIStore, Srcs: []ir.Reg{val}, Addr: "$sink", Base: "$sink"})
	deadCodeElim(tr.pre, tr.body)
	// Drop the sink store: only the evaluation operations remain.
	if n := len(tr.body.Instrs); n > 0 && tr.body.Instrs[n-1].Addr == "$sink" {
		tr.body.Instrs = tr.body.Instrs[:n-1]
	}
	return &Lowered{Body: tr.body, Pre: tr.pre, PerEntry: tr.perEntry, Post: tr.post, Refs: tr.refs}, nil
}

// LoopOverhead builds the per-iteration loop control operations. The
// back-end compiles counted DO loops to POWER's branch-on-count (bc
// with CTR decrement) — no compare, and the branch does not depend on
// the induction increment, which exists only to feed addressing. This
// is the "branch optimization" of §2.2.2 that the cost model imitates.
func LoopOverhead() *ir.Block {
	b := &ir.Block{Label: "loopctl"}
	b.Append(ir.Instr{Op: ir.OpIAdd, Dst: 0, Srcs: []ir.Reg{1, 2}})
	b.Append(ir.Instr{Op: ir.OpBranch, Srcs: []ir.Reg{ir.NoReg}})
	return b
}

// killedSets collects scalars assigned and arrays stored by stmts.
func killedSets(stmts []source.Stmt) (vars, arrs map[string]bool) {
	vars, arrs = map[string]bool{}, map[string]bool{}
	var walk func(s source.Stmt)
	walk = func(s source.Stmt) {
		switch x := s.(type) {
		case *source.Assign:
			switch lhs := x.LHS.(type) {
			case *source.VarRef:
				vars[lhs.Name] = true
			case *source.ArrayRef:
				arrs[lhs.Name] = true
			}
		case *source.CallStmt:
			// Calls may write any argument.
			for _, a := range x.Args {
				if vr, ok := a.(*source.VarRef); ok {
					vars[vr.Name] = true
					arrs[vr.Name] = true
				}
			}
		case *source.IfStmt:
			for _, t := range x.Then {
				walk(t)
			}
			for _, e := range x.Else {
				walk(e)
			}
		case *source.DoLoop:
			vars[x.Var] = true
			for _, t := range x.Body {
				walk(t)
			}
		}
	}
	for _, s := range stmts {
		walk(s)
	}
	return vars, arrs
}

func (tr *Translator) stmt(s source.Stmt) error {
	switch x := s.(type) {
	case *source.Assign:
		return tr.assign(x)
	case *source.CallStmt:
		return tr.call(x)
	case *source.ContinueStmt, *source.ReturnStmt:
		return nil
	default:
		return fmt.Errorf("%s: statement %T is not straight-line; split before lowering", s.StmtPos(), s)
	}
}

func (tr *Translator) assign(a *source.Assign) error {
	ty, err := tr.tbl.TypeOf(a.RHS)
	if err != nil {
		return err
	}
	val, valTy, err := tr.expr(a.RHS)
	if err != nil {
		return err
	}
	_ = ty
	switch lhs := a.LHS.(type) {
	case *source.VarRef:
		sym := tr.tbl.Lookup(lhs.Name)
		lty := source.TypeReal
		if sym != nil {
			lty = sym.Type
		}
		val = tr.convert(val, valTy, lty)
		tr.store(lty, val, lhs.Name, lhs.Name, nil, 0)
	case *source.ArrayRef:
		sym := tr.tbl.Lookup(lhs.Name)
		lty := sym.Type
		val = tr.convert(val, valTy, lty)
		addr, addrRegs, err := tr.arrayAddr(lhs)
		if err != nil {
			return err
		}
		tr.store(lty, val, addr, lhs.Name, addrRegs, tr.tagRef(lhs))
	default:
		return fmt.Errorf("%s: bad assignment target", a.Pos)
	}
	return nil
}

// store emits the store and updates the value maps: later loads of the
// same address forward from the stored register; overlapping CSE
// entries are invalidated.
func (tr *Translator) store(ty source.Type, val ir.Reg, addr, base string, addrRegs []ir.Reg, refID int32) {
	if info, ok := tr.promotable[addr]; ok {
		tr.promotedStore(addr, info, val, refID)
		tr.killCSE(addr, base)
		tr.cse[loadKey(addr)] = val
		return
	}
	op := ir.OpFStore
	if ty == source.TypeInteger {
		op = ir.OpIStore
	}
	srcs := append([]ir.Reg{val}, addrRegs...)
	tr.body.Append(ir.Instr{Op: op, Srcs: srcs, Addr: addr, Base: base, RefID: refID})
	tr.killCSE(addr, base)
	// Store-to-load forwarding.
	tr.cse[loadKey(addr)] = val
}

// killCSE drops CSE entries that depend on the stored location.
func (tr *Translator) killCSE(addr, base string) {
	needle := "[" + addr + "]"
	baseNeedle := "[" + base + "("
	for k := range tr.cse {
		if strings.Contains(k, needle) || strings.Contains(k, baseNeedle) {
			delete(tr.cse, k)
		}
	}
}

func loadKey(addr string) string { return "ld[" + addr + "]" }

// equalStrings reports element-wise equality.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (tr *Translator) call(c *source.CallStmt) error {
	// Arguments: scalars are passed by reference (no op cost here);
	// expression arguments are evaluated and stored to temporaries.
	for _, a := range c.Args {
		switch a.(type) {
		case *source.VarRef, *source.ArrayRef:
			continue
		}
		val, ty, err := tr.expr(a)
		if err != nil {
			return err
		}
		tmp := fmt.Sprintf("argtmp%d", len(tr.body.Instrs))
		tr.store(ty, val, tmp, tmp, nil, 0)
	}
	tr.body.Append(ir.Instr{Op: ir.OpCall, Dst: tr.newReg(), Callee: c.Name})
	// A call clobbers all memory-derived values.
	tr.cse = map[string]ir.Reg{}
	return nil
}

// lowerCondBranch lowers a logical expression to compares, CR logic and
// a branch.
func (tr *Translator) lowerCondBranch(cond source.Expr) error {
	cr, err := tr.lowerCond(cond)
	if err != nil {
		return err
	}
	tr.body.Append(ir.Instr{Op: ir.OpBranch, Srcs: []ir.Reg{cr}})
	return nil
}

// lowerCond produces a condition-register value for a logical
// expression.
func (tr *Translator) lowerCond(cond source.Expr) (ir.Reg, error) {
	switch x := cond.(type) {
	case *source.BinExpr:
		if x.Kind.IsRelational() {
			l, lt, err := tr.expr(x.L)
			if err != nil {
				return ir.NoReg, err
			}
			r, rt, err := tr.expr(x.R)
			if err != nil {
				return ir.NoReg, err
			}
			op := ir.OpICmp
			if lt == source.TypeReal || rt == source.TypeReal {
				op = ir.OpFCmp
				l = tr.convert(l, lt, source.TypeReal)
				r = tr.convert(r, rt, source.TypeReal)
			}
			dst := tr.newReg()
			tr.body.Append(ir.Instr{Op: op, Dst: dst, Srcs: []ir.Reg{l, r}})
			return dst, nil
		}
		if x.Kind.IsLogical() {
			l, err := tr.lowerCond(x.L)
			if err != nil {
				return ir.NoReg, err
			}
			r, err := tr.lowerCond(x.R)
			if err != nil {
				return ir.NoReg, err
			}
			// CR logic: combine with an integer op on the CR unit —
			// modelled as an integer op (crand/cror occupy the CRU; we
			// approximate with an FXU-class op of 1 cycle).
			dst := tr.newReg()
			tr.body.Append(ir.Instr{Op: ir.OpIAdd, Dst: dst, Srcs: []ir.Reg{l, r}})
			return dst, nil
		}
		return ir.NoReg, fmt.Errorf("%s: not a condition: %s", x.Pos, source.ExprString(x))
	case *source.UnExpr:
		if !x.Neg {
			return tr.lowerCond(x.X)
		}
		return ir.NoReg, fmt.Errorf("%s: arithmetic expression used as condition", x.Pos)
	default:
		return ir.NoReg, fmt.Errorf("condition %T is not logical", cond)
	}
}
