package lower

import (
	"fmt"
	"strconv"
	"strings"

	"perfpredict/internal/ir"
	"perfpredict/internal/source"
)

// expr lowers an arithmetic expression, returning the register holding
// the value and its type. CSE, invariance hoisting, FMA fusion and the
// small-multiplier specialization happen here.
func (tr *Translator) expr(e source.Expr) (ir.Reg, source.Type, error) {
	key, keyed := tr.exprKey(e)
	if keyed && tr.opt.CSE {
		if r, ok := tr.cse[key]; ok {
			ty, _ := tr.tbl.TypeOf(e)
			return r, ty, nil
		}
		if r, ok := tr.preCSE[key]; ok {
			ty, _ := tr.tbl.TypeOf(e)
			return r, ty, nil
		}
	}
	hoist := tr.opt.CodeMotion && keyed && tr.invariant(e)
	r, ty, err := tr.lowerExpr(e, hoist)
	if err != nil {
		return ir.NoReg, source.TypeUnknown, err
	}
	if keyed && tr.opt.CSE {
		if hoist {
			tr.preCSE[key] = r
		} else {
			tr.cse[key] = r
		}
	}
	return r, ty, nil
}

// emit appends to the preheader or the body.
func (tr *Translator) emit(hoist bool, in ir.Instr) {
	if hoist {
		tr.pre.Append(in)
		return
	}
	tr.body.Append(in)
	if in.Op.IsLoad() {
		tr.loadCount++
		if k := tr.opt.RegisterPressure; k > 0 && tr.loadCount%k == 0 {
			// Limited registers force a spill store (§2.2.1).
			spill := fmt.Sprintf("spill%d", tr.loadCount/k)
			tr.body.Append(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{in.Dst}, Addr: spill, Base: spill})
		}
	}
}

func (tr *Translator) lowerExpr(e source.Expr, hoist bool) (ir.Reg, source.Type, error) {
	switch x := e.(type) {
	case *source.NumLit:
		dst := tr.newReg()
		if x.IsReal {
			// FP constants come from the constant pool via a load.
			tr.emit(hoist, ir.Instr{Op: ir.OpFLoad, Dst: dst, Addr: "=" + source.ExprString(x), Base: "=const"})
			return dst, source.TypeReal, nil
		}
		tr.emit(hoist, ir.Instr{Op: ir.OpLoadImm, Dst: dst, Imm: x.Value})
		return dst, source.TypeInteger, nil

	case *source.VarRef:
		sym := tr.tbl.Lookup(x.Name)
		if sym == nil {
			return ir.NoReg, source.TypeUnknown, fmt.Errorf("%s: unknown variable %q", x.Pos, x.Name)
		}
		if sym.IsConst {
			dst := tr.newReg()
			if sym.Type == source.TypeReal {
				tr.emit(hoist, ir.Instr{Op: ir.OpFLoad, Dst: dst, Addr: "=" + x.Name, Base: "=const"})
				return dst, source.TypeReal, nil
			}
			tr.emit(hoist, ir.Instr{Op: ir.OpLoadImm, Dst: dst, Imm: sym.ConstVal})
			return dst, source.TypeInteger, nil
		}
		if tr.loopVars[x.Name] {
			// Loop induction variables live in registers: reading one
			// is free (no producing instruction is emitted).
			return tr.newReg(), source.TypeInteger, nil
		}
		if info, ok := tr.promotable[x.Name]; ok {
			return tr.promotedLoad(x.Name, info, 0), sym.Type, nil
		}
		op := ir.OpFLoad
		if sym.Type == source.TypeInteger {
			op = ir.OpILoad
		}
		dst := tr.newReg()
		tr.emit(hoist, ir.Instr{Op: op, Dst: dst, Addr: x.Name, Base: x.Name})
		return dst, sym.Type, nil

	case *source.ArrayRef:
		addr, addrRegs, err := tr.arrayAddr(x)
		if err != nil {
			return ir.NoReg, source.TypeUnknown, err
		}
		sym := tr.tbl.Lookup(x.Name)
		if info, ok := tr.promotable[addr]; ok {
			return tr.promotedLoad(addr, info, tr.tagRef(x)), sym.Type, nil
		}
		op := ir.OpFLoad
		if sym.Type == source.TypeInteger {
			op = ir.OpILoad
		}
		dst := tr.newReg()
		tr.emit(hoist, ir.Instr{Op: op, Dst: dst, Srcs: addrRegs, Addr: addr, Base: x.Name, RefID: tr.tagRef(x)})
		return dst, sym.Type, nil

	case *source.UnExpr:
		if !x.Neg {
			return ir.NoReg, source.TypeUnknown, fmt.Errorf("%s: .not. in arithmetic context", x.Pos)
		}
		v, ty, err := tr.expr(x.X)
		if err != nil {
			return ir.NoReg, source.TypeUnknown, err
		}
		dst := tr.newReg()
		op := ir.OpFNeg
		if ty == source.TypeInteger {
			op = ir.OpINeg
		}
		tr.emit(hoist, ir.Instr{Op: op, Dst: dst, Srcs: []ir.Reg{v}})
		return dst, ty, nil

	case *source.IntrinsicCall:
		return tr.intrinsic(x, hoist)

	case *source.BinExpr:
		return tr.binExpr(x, hoist)

	default:
		return ir.NoReg, source.TypeUnknown, fmt.Errorf("cannot lower expression %T", e)
	}
}

func (tr *Translator) binExpr(x *source.BinExpr, hoist bool) (ir.Reg, source.Type, error) {
	if x.Kind.IsRelational() || x.Kind.IsLogical() {
		return ir.NoReg, source.TypeUnknown, fmt.Errorf("%s: logical expression in arithmetic context", x.Pos)
	}
	lt, err := tr.tbl.TypeOf(x.L)
	if err != nil {
		return ir.NoReg, source.TypeUnknown, err
	}
	rt, err := tr.tbl.TypeOf(x.R)
	if err != nil {
		return ir.NoReg, source.TypeUnknown, err
	}
	resTy := source.TypeInteger
	if lt == source.TypeReal || rt == source.TypeReal {
		resTy = source.TypeReal
	}

	// FMA recognition: a*b + c, c + a*b, a*b − c (machine permitting).
	if tr.opt.FuseFMA && tr.m.HasFMA && resTy == source.TypeReal &&
		(x.Kind == source.BinAdd || x.Kind == source.BinSub) {
		if mul, addend, sub, ok := fmaOperands(x); ok {
			a, aty, err := tr.expr(mul.L)
			if err != nil {
				return ir.NoReg, source.TypeUnknown, err
			}
			b, bty, err := tr.expr(mul.R)
			if err != nil {
				return ir.NoReg, source.TypeUnknown, err
			}
			c, cty, err := tr.expr(addend)
			if err != nil {
				return ir.NoReg, source.TypeUnknown, err
			}
			a = tr.convert(a, aty, source.TypeReal)
			b = tr.convert(b, bty, source.TypeReal)
			c = tr.convert(c, cty, source.TypeReal)
			dst := tr.newReg()
			op := ir.OpFMA
			if sub {
				op = ir.OpFMS
			}
			tr.emit(hoist, ir.Instr{Op: op, Dst: dst, Srcs: []ir.Reg{a, b, c}})
			return dst, source.TypeReal, nil
		}
	}

	if x.Kind == source.BinPow {
		return tr.power(x, hoist, resTy)
	}

	l, lt2, err := tr.expr(x.L)
	if err != nil {
		return ir.NoReg, source.TypeUnknown, err
	}
	r, rt2, err := tr.expr(x.R)
	if err != nil {
		return ir.NoReg, source.TypeUnknown, err
	}
	l = tr.convert(l, lt2, resTy)
	r = tr.convert(r, rt2, resTy)

	var op ir.Op
	switch x.Kind {
	case source.BinAdd:
		op = ir.OpFAdd
		if resTy == source.TypeInteger {
			op = ir.OpIAdd
		}
	case source.BinSub:
		op = ir.OpFSub
		if resTy == source.TypeInteger {
			op = ir.OpISub
		}
	case source.BinMul:
		op = ir.OpFMul
		if resTy == source.TypeInteger {
			op = ir.OpIMul
			// Operand-value-dependent specialization (§2.2.1): a
			// multiplier known to be in [−128, 127] takes the short
			// form.
			if v, ok := tr.smallOperand(x.L); ok && v >= -128 && v <= 127 {
				op = ir.OpIMulSmall
			} else if v, ok := tr.smallOperand(x.R); ok && v >= -128 && v <= 127 {
				op = ir.OpIMulSmall
			}
		}
	case source.BinDiv:
		op = ir.OpFDiv
		if resTy == source.TypeInteger {
			op = ir.OpIDiv
		}
	default:
		return ir.NoReg, source.TypeUnknown, fmt.Errorf("unhandled operator %v", x.Kind)
	}
	dst := tr.newReg()
	tr.emit(hoist, ir.Instr{Op: op, Dst: dst, Srcs: []ir.Reg{l, r}})
	return dst, resTy, nil
}

// fmaOperands matches x = mul ± addend with a multiply on either side
// for adds, or only on the left for subtracts (a*b − c).
func fmaOperands(x *source.BinExpr) (mul *source.BinExpr, addend source.Expr, sub, ok bool) {
	isMul := func(e source.Expr) (*source.BinExpr, bool) {
		b, isb := e.(*source.BinExpr)
		if isb && b.Kind == source.BinMul {
			return b, true
		}
		return nil, false
	}
	if m, isL := isMul(x.L); isL {
		return m, x.R, x.Kind == source.BinSub, true
	}
	if x.Kind == source.BinAdd {
		if m, isR := isMul(x.R); isR {
			return m, x.L, false, true
		}
	}
	return nil, nil, false, false
}

// smallOperand folds an operand to a constant for the multiplier check.
func (tr *Translator) smallOperand(e source.Expr) (int64, bool) {
	return tr.tbl.IntConst(e)
}

// power lowers x**k: small constant integer exponents expand to
// multiplies; everything else becomes a library call.
func (tr *Translator) power(x *source.BinExpr, hoist bool, resTy source.Type) (ir.Reg, source.Type, error) {
	if k, ok := tr.tbl.IntConst(x.R); ok && k >= 0 && k <= 4 {
		switch k {
		case 0:
			dst := tr.newReg()
			if resTy == source.TypeReal {
				tr.emit(hoist, ir.Instr{Op: ir.OpFLoad, Dst: dst, Addr: "=1.0", Base: "=const"})
			} else {
				tr.emit(hoist, ir.Instr{Op: ir.OpLoadImm, Dst: dst, Imm: 1})
			}
			return dst, resTy, nil
		case 1:
			r, ty, err := tr.expr(x.L)
			if err != nil {
				return ir.NoReg, source.TypeUnknown, err
			}
			return tr.convert(r, ty, resTy), resTy, nil
		default:
			// Expand to a left-associated multiply tree and lower it
			// through expr so CSE shares the intermediate powers
			// (y**2 and y**3 both reuse y·y).
			tree := source.Expr(source.CloneExpr(x.L))
			for i := int64(1); i < k; i++ {
				tree = &source.BinExpr{Kind: source.BinMul, L: tree, R: source.CloneExpr(x.L), Pos: x.Pos}
			}
			r, ty, err := tr.expr(tree)
			if err != nil {
				return ir.NoReg, source.TypeUnknown, err
			}
			return tr.convert(r, ty, resTy), resTy, nil
		}
	}
	// General power: library call.
	if _, _, err := tr.expr(x.L); err != nil {
		return ir.NoReg, source.TypeUnknown, err
	}
	if _, _, err := tr.expr(x.R); err != nil {
		return ir.NoReg, source.TypeUnknown, err
	}
	dst := tr.newReg()
	tr.emit(hoist, ir.Instr{Op: ir.OpCall, Dst: dst, Callee: "pow"})
	return dst, source.TypeReal, nil
}

func (tr *Translator) intrinsic(x *source.IntrinsicCall, hoist bool) (ir.Reg, source.Type, error) {
	lowerArgs := func() ([]ir.Reg, []source.Type, error) {
		regs := make([]ir.Reg, len(x.Args))
		tys := make([]source.Type, len(x.Args))
		for i, a := range x.Args {
			r, ty, err := tr.expr(a)
			if err != nil {
				return nil, nil, err
			}
			regs[i], tys[i] = r, ty
		}
		return regs, tys, nil
	}
	regs, tys, err := lowerArgs()
	if err != nil {
		return ir.NoReg, source.TypeUnknown, err
	}
	allReal := func() {
		for i := range regs {
			regs[i] = tr.convert(regs[i], tys[i], source.TypeReal)
		}
	}
	switch x.Name {
	case "sqrt":
		allReal()
		dst := tr.newReg()
		tr.emit(hoist, ir.Instr{Op: ir.OpFSqrt, Dst: dst, Srcs: regs})
		return dst, source.TypeReal, nil
	case "abs":
		dst := tr.newReg()
		if tys[0] == source.TypeInteger {
			tr.emit(hoist, ir.Instr{Op: ir.OpIAbs, Dst: dst, Srcs: regs})
			return dst, source.TypeInteger, nil
		}
		tr.emit(hoist, ir.Instr{Op: ir.OpFAbs, Dst: dst, Srcs: regs})
		return dst, source.TypeReal, nil
	case "min", "max":
		resTy := source.TypeInteger
		for _, ty := range tys {
			if ty == source.TypeReal {
				resTy = source.TypeReal
			}
		}
		op := ir.OpFMin
		if x.Name == "max" {
			op = ir.OpFMax
		}
		if resTy == source.TypeInteger {
			// Integer min/max lower to compare + select ≈ 2 FXU ops.
			cur := regs[0]
			for _, r := range regs[1:] {
				cmp := tr.newReg()
				tr.emit(hoist, ir.Instr{Op: ir.OpICmp, Dst: cmp, Srcs: []ir.Reg{cur, r}})
				dst := tr.newReg()
				tr.emit(hoist, ir.Instr{Op: ir.OpIAdd, Dst: dst, Srcs: []ir.Reg{cmp, r}})
				cur = dst
			}
			return cur, source.TypeInteger, nil
		}
		allReal()
		cur := regs[0]
		for _, r := range regs[1:] {
			dst := tr.newReg()
			tr.emit(hoist, ir.Instr{Op: op, Dst: dst, Srcs: []ir.Reg{cur, r}})
			cur = dst
		}
		return cur, source.TypeReal, nil
	case "mod":
		dst := tr.newReg()
		tr.emit(hoist, ir.Instr{Op: ir.OpIMod, Dst: dst, Srcs: regs})
		return dst, source.TypeInteger, nil
	case "int":
		dst := tr.newReg()
		tr.emit(hoist, ir.Instr{Op: ir.OpFtoI, Dst: dst, Srcs: regs})
		return dst, source.TypeInteger, nil
	case "real", "dble":
		if tys[0] == source.TypeReal {
			return regs[0], source.TypeReal, nil
		}
		dst := tr.newReg()
		tr.emit(hoist, ir.Instr{Op: ir.OpItoF, Dst: dst, Srcs: regs})
		return dst, source.TypeReal, nil
	case "exp", "log", "sin", "cos":
		allReal()
		dst := tr.newReg()
		tr.emit(hoist, ir.Instr{Op: ir.OpCall, Dst: dst, Srcs: regs, Callee: x.Name})
		return dst, source.TypeReal, nil
	default:
		return ir.NoReg, source.TypeUnknown, fmt.Errorf("%s: unknown intrinsic %q", x.Pos, x.Name)
	}
}

// convert inserts int↔real conversions when needed.
func (tr *Translator) convert(r ir.Reg, from, to source.Type) ir.Reg {
	if from == to || from == source.TypeUnknown || to == source.TypeUnknown {
		return r
	}
	dst := tr.newReg()
	op := ir.OpItoF
	if to == source.TypeInteger {
		op = ir.OpFtoI
	}
	tr.body.Append(ir.Instr{Op: op, Dst: dst, Srcs: []ir.Reg{r}})
	return dst
}

// arrayAddr renders the canonical address string of an array reference
// and emits any explicit subscript arithmetic the addressing hardware
// cannot fold. Affine subscripts of one variable (i, i±c, c·i±d, c)
// are canonicalized — so x((i+1)+1) and x(i+2) agree — and unit-stride
// forms compile to update-form addressing on POWER at no extra cost;
// other subscripts are lowered as integer arithmetic feeding an
// address computation.
func (tr *Translator) arrayAddr(a *source.ArrayRef) (string, []ir.Reg, error) {
	addr, cached := tr.addrCache[a]
	var parts []string
	if !cached {
		parts = make([]string, len(a.Idx))
	}
	var addrRegs []ir.Reg
	for i, ix := range a.Idx {
		str, cheap := tr.subscriptString(ix)
		if !cached {
			parts[i] = str
		}
		if cheap {
			continue
		}
		// Explicit subscript arithmetic + address fold; the resulting
		// register feeds the memory operation so the dependence (and
		// liveness) is visible downstream.
		r, ty, err := tr.expr(ix)
		if err != nil {
			return "", nil, err
		}
		if ty != source.TypeInteger {
			return "", nil, fmt.Errorf("%s: non-integer subscript", a.Pos)
		}
		dst := tr.newReg()
		tr.body.Append(ir.Instr{Op: ir.OpAddr, Dst: dst, Srcs: []ir.Reg{r, ir.NoReg}})
		addrRegs = append(addrRegs, dst)
	}
	if !cached {
		addr = a.Name + "(" + strings.Join(parts, ",") + ")"
		tr.addrCache[a] = addr
	}
	return addr, addrRegs, nil
}

// subscriptString canonicalizes a subscript to "c*v+d" normal form when
// it is affine in a single integer variable, reporting whether the
// addressing hardware folds it for free (constant, or stride ±1).
// Results are memoized per AST node: the normal form depends only on
// the (immutable) node and the symbol table.
func (tr *Translator) subscriptString(e source.Expr) (string, bool) {
	if ent, ok := tr.subCache[e]; ok {
		return ent.s, ent.cheap
	}
	s, cheap := tr.subscriptStringSlow(e)
	tr.subCache[e] = subEntry{s, cheap}
	return s, cheap
}

func (tr *Translator) subscriptStringSlow(e source.Expr) (string, bool) {
	v, c, d, ok := tr.affineSubscript(e)
	if !ok {
		return source.ExprString(e), false
	}
	if v == "" || c == 0 {
		return strconv.FormatInt(d, 10), true
	}
	var buf []byte
	switch c {
	case 1:
		buf = append(buf, v...)
	case -1:
		buf = append(buf, '-')
		buf = append(buf, v...)
	default:
		buf = strconv.AppendInt(buf, c, 10)
		buf = append(buf, '*')
		buf = append(buf, v...)
	}
	if d != 0 {
		if d > 0 {
			buf = append(buf, '+')
		}
		buf = strconv.AppendInt(buf, d, 10)
	}
	return string(buf), c == 1 || c == -1
}

// affineSubscript extracts (v, c, d) with subscript = c·v + d for a
// single integer scalar variable v (v == "" for pure constants).
func (tr *Translator) affineSubscript(e source.Expr) (v string, c, d int64, ok bool) {
	if k, isConst := tr.tbl.IntConst(e); isConst {
		return "", 0, k, true
	}
	switch x := e.(type) {
	case *source.VarRef:
		sym := tr.tbl.Lookup(x.Name)
		if sym == nil || sym.IsArray() || sym.Type != source.TypeInteger {
			return "", 0, 0, false
		}
		return x.Name, 1, 0, true
	case *source.UnExpr:
		if !x.Neg {
			return "", 0, 0, false
		}
		v, c, d, ok = tr.affineSubscript(x.X)
		return v, -c, -d, ok
	case *source.BinExpr:
		switch x.Kind {
		case source.BinAdd, source.BinSub:
			lv, lc, ld, lok := tr.affineSubscript(x.L)
			rv, rc, rd, rok := tr.affineSubscript(x.R)
			if !lok || !rok {
				return "", 0, 0, false
			}
			if x.Kind == source.BinSub {
				rc, rd = -rc, -rd
			}
			switch {
			case lv == "" || lc == 0:
				return rv, rc, ld + rd, true
			case rv == "" || rc == 0:
				return lv, lc, ld + rd, true
			case lv == rv:
				if lc+rc == 0 {
					return "", 0, ld + rd, true
				}
				return lv, lc + rc, ld + rd, true
			default:
				return "", 0, 0, false
			}
		case source.BinMul:
			if k, isConst := tr.tbl.IntConst(x.L); isConst {
				rv, rc, rd, rok := tr.affineSubscript(x.R)
				return rv, k * rc, k * rd, rok
			}
			if k, isConst := tr.tbl.IntConst(x.R); isConst {
				lv, lc, ld, lok := tr.affineSubscript(x.L)
				return lv, k * lc, k * ld, lok
			}
			return "", 0, 0, false
		default:
			return "", 0, 0, false
		}
	default:
		return "", 0, 0, false
	}
}

// exprKey builds the CSE key; the bool result is false for expressions
// that must not be shared (calls have side effects). Keys are memoized
// per AST node; the cache is flushed by reset() when the loop-variable
// set changes, the only translator state a key depends on.
func (tr *Translator) exprKey(e source.Expr) (string, bool) {
	if ent, ok := tr.keyCache[e]; ok {
		return ent.s, ent.ok
	}
	s, ok := tr.exprKeySlow(e)
	tr.keyCache[e] = keyEntry{s, ok}
	return s, ok
}

func (tr *Translator) exprKeySlow(e source.Expr) (string, bool) {
	switch x := e.(type) {
	case *source.NumLit:
		return "#" + source.ExprString(x), true
	case *source.VarRef:
		if tr.loopVars[x.Name] {
			return "iv:" + x.Name, true
		}
		sym := tr.tbl.Lookup(x.Name)
		if sym != nil && sym.IsConst {
			return "#" + x.Name, true
		}
		return loadKey(x.Name), true
	case *source.ArrayRef:
		parts := make([]string, len(x.Idx))
		for i, ix := range x.Idx {
			// Canonical affine form so x((i+1)+1) and x(i+2) share a
			// key (and match the address string the loads carry).
			if _, _, _, ok := tr.affineSubscript(ix); ok {
				parts[i], _ = tr.subscriptString(ix)
				continue
			}
			k, ok := tr.exprKey(ix)
			if !ok {
				return "", false
			}
			parts[i] = k
		}
		return loadKey(x.Name + "(" + strings.Join(parts, ",") + ")"), true
	case *source.UnExpr:
		k, ok := tr.exprKey(x.X)
		if !ok {
			return "", false
		}
		return "neg(" + k + ")", true
	case *source.BinExpr:
		lk, lok := tr.exprKey(x.L)
		rk, rok := tr.exprKey(x.R)
		if !lok || !rok {
			return "", false
		}
		op := x.Kind.String()
		// Canonicalize commutative operands.
		if (x.Kind == source.BinAdd || x.Kind == source.BinMul) && rk < lk {
			lk, rk = rk, lk
		}
		return "(" + lk + op + rk + ")", true
	case *source.IntrinsicCall:
		if x.Name == "exp" || x.Name == "log" || x.Name == "sin" || x.Name == "cos" {
			// Pure, but lowered as calls — still CSE-able.
		}
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			k, ok := tr.exprKey(a)
			if !ok {
				return "", false
			}
			parts[i] = k
		}
		return x.Name + "(" + strings.Join(parts, ",") + ")", true
	default:
		return "", false
	}
}

// invariant reports whether e can be hoisted out of the enclosing
// loops: it references no induction variable, no scalar assigned in
// the body, and no array stored in the body.
func (tr *Translator) invariant(e source.Expr) bool {
	switch x := e.(type) {
	case *source.NumLit:
		return true
	case *source.VarRef:
		if tr.loopVars[x.Name] || tr.killedVars[x.Name] {
			return false
		}
		return true
	case *source.ArrayRef:
		if tr.killedArrs[x.Name] {
			return false
		}
		for _, ix := range x.Idx {
			if !tr.invariant(ix) {
				return false
			}
		}
		return true
	case *source.UnExpr:
		return tr.invariant(x.X)
	case *source.BinExpr:
		return tr.invariant(x.L) && tr.invariant(x.R)
	case *source.IntrinsicCall:
		for _, a := range x.Args {
			if !tr.invariant(a) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
