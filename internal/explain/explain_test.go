package explain

import (
	"math"
	"strings"
	"testing"

	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

func report(t *testing.T, src string, m *machine.Machine, opt Options) *Report {
	t.Helper()
	prog, err := source.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Program(prog, tbl, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

const matmulSrc = `
subroutine mm(n)
  integer i, j, k, n
  real a(100,100), b(100,100), c(100,100)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
`

// A matmul has one innermost nest; its diagnosis must name the whole
// loop chain, carry all the weight, stay within utilization bounds,
// and present a nonempty, chronologically ordered critical path.
func TestProgramMatmul(t *testing.T) {
	rep := report(t, matmulSrc, machine.NewPOWER1(), Options{})
	if len(rep.Nests) != 1 {
		t.Fatalf("got %d nests, want 1: %+v", len(rep.Nests), rep.Nests)
	}
	n := rep.Nests[0]
	if n.Label != "do i/do j/do k" {
		t.Errorf("label = %q, want do i/do j/do k", n.Label)
	}
	if math.Abs(n.Weight-1) > 1e-9 {
		t.Errorf("single nest weight = %v, want 1", n.Weight)
	}
	if n.Bottleneck == "" || rep.Bottleneck != n.Bottleneck {
		t.Errorf("bottleneck %q / program %q, want identical and nonempty", n.Bottleneck, rep.Bottleneck)
	}
	if n.BottleneckUtil <= 0 || n.BottleneckUtil > 1 {
		t.Errorf("bottleneck utilization %v outside (0,1]", n.BottleneckUtil)
	}
	if len(n.Path) == 0 {
		t.Fatal("empty critical path")
	}
	for i, s := range n.Path {
		if s.Op == "" {
			t.Errorf("path step %d has no op name", i)
		}
		if i > 0 && s.Start < n.Path[i-1].Start {
			t.Errorf("path not chronological at step %d: %+v", i, n.Path)
		}
	}
	if n.PathCycles > n.BlockCost {
		t.Errorf("PathCycles %d exceeds block cost %d", n.PathCycles, n.BlockCost)
	}
	if rep.Cycles <= 0 {
		t.Errorf("Cycles = %v, want > 0", rep.Cycles)
	}
	if rep.MemoryCycles < 0 || rep.MemoryCycles > rep.Cycles {
		t.Errorf("MemoryCycles %v outside [0, %v]", rep.MemoryCycles, rep.Cycles)
	}
}

// Two sequential nests with very different trip counts: both must be
// diagnosed, weights must sum to one, and the heavier (cubic) nest must
// dominate the lighter (linear) one.
func TestProgramNestWeights(t *testing.T) {
	src := `
subroutine two(n)
  integer i, j, k, n
  real a(100,100), b(100,100), c(100,100), x(100), y(100)
  do i = 1, n
    y(i) = y(i) + 2.0 * x(i)
  end do
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
`
	rep := report(t, src, machine.NewPOWER1(), Options{SkipWhatIf: true})
	if len(rep.Nests) != 2 {
		t.Fatalf("got %d nests, want 2", len(rep.Nests))
	}
	sum := 0.0
	for _, n := range rep.Nests {
		if n.Weight < 0 || n.Weight > 1 {
			t.Errorf("nest %s weight %v outside [0,1]", n.Label, n.Weight)
		}
		sum += n.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
	daxpy, mm := rep.Nests[0], rep.Nests[1]
	if !strings.HasPrefix(mm.Label, "do i/do j") {
		t.Fatalf("nest order: %q then %q", daxpy.Label, mm.Label)
	}
	if mm.Weight <= daxpy.Weight {
		t.Errorf("cubic nest weight %v not above linear nest %v", mm.Weight, daxpy.Weight)
	}
}

// The one-more-pipe experiment must name the bottleneck kind, report
// one more pipe than the base machine, and never predict a slowdown.
func TestProgramWhatIf(t *testing.T) {
	m := machine.NewPOWER1()
	rep := report(t, matmulSrc, m, Options{})
	if rep.WhatIf == nil {
		t.Fatal("no what-if on a nonempty report")
	}
	w := rep.WhatIf
	if w.Unit != rep.Bottleneck {
		t.Errorf("what-if unit %q, want bottleneck %q", w.Unit, rep.Bottleneck)
	}
	if w.Pipes != m.UnitCounts[machine.UnitKind(rep.Bottleneck)]+1 {
		t.Errorf("what-if pipes = %d, want one more than base", w.Pipes)
	}
	if w.Speedup < 1 {
		t.Errorf("speedup %v < 1: one more pipe predicted a slowdown", w.Speedup)
	}
	if w.Cycles > rep.Cycles {
		t.Errorf("what-if cycles %v above baseline %v", w.Cycles, rep.Cycles)
	}

	skip := report(t, matmulSrc, m, Options{SkipWhatIf: true})
	if skip.WhatIf != nil {
		t.Error("SkipWhatIf still ran the experiment")
	}
}

// A loopless subroutine falls back to a single "body" nest.
func TestProgramStraightBody(t *testing.T) {
	src := `
subroutine straight()
  real a(10), b(10)
  a(1) = b(1) + 2.0
  a(2) = b(2) * 3.0
end
`
	rep := report(t, src, machine.NewPOWER1(), Options{SkipWhatIf: true})
	if len(rep.Nests) != 1 || rep.Nests[0].Label != "body" {
		t.Fatalf("nests = %+v, want one loopless body nest", rep.Nests)
	}
	if rep.Nests[0].Weight != 1 {
		t.Errorf("weight = %v, want 1", rep.Nests[0].Weight)
	}
}

// Nominal values must steer nest weights: making the outer trip count
// symbolic and assigning it a small value must not break normalization.
func TestProgramNominalTrips(t *testing.T) {
	rep := report(t, matmulSrc, machine.NewPOWER1(), Options{
		SkipWhatIf: true,
		Nominal:    map[string]float64{"n": 8},
	})
	if len(rep.Nests) != 1 {
		t.Fatalf("got %d nests, want 1", len(rep.Nests))
	}
	if rep.Cycles <= 0 {
		t.Errorf("Cycles = %v at n=8, want > 0", rep.Cycles)
	}
}
