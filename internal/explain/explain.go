// Package explain turns predictions into diagnoses: where a program's
// cycles go, which functional unit saturates first, which chain of
// dependence and resource edges binds each kernel's schedule, and what
// one more pipe of the bottleneck kind would buy. It is the program-
// level aggregation of tetris.EstimateExplained — one diagnosis per
// innermost straight-line loop nest, weighted by each nest's share of
// the predicted cycles — shared by the public perfpredict.Explain API,
// the predictd /v1/explain endpoint, and the transformation search's
// per-candidate bottleneck reporting.
//
// Explanation never feeds back into prediction: every function here
// only reads the same placements Estimate commits, so enabling it
// cannot perturb Predict/PredictBatch/Optimize output.
package explain

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/lower"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
	"perfpredict/internal/tetris"
)

// defaultUnknown is the value assumed for non-probability unknowns
// (loop bounds, opaque expressions) absent from the nominal point —
// the same stand-in the transformation search uses.
const defaultUnknown = 100

// Options tune a program diagnosis. The zero value mirrors Predict's
// defaults and includes the one-more-pipe experiment.
type Options struct {
	// Aggregate, Lower and Tetris are the pricing knobs, defaulted
	// exactly as Predict defaults them when zero.
	Aggregate *aggregate.Options
	Lower     *lower.Options
	Tetris    tetris.Options
	// Nominal assigns values to unknowns when evaluating shares and
	// speedups. Missing probabilities default to 0.5, everything else
	// to 100 (the search's convention).
	Nominal map[string]float64
	// SkipWhatIf suppresses the one-more-pipe experiment (which costs
	// one extra whole-program prediction).
	SkipWhatIf bool
}

// KindUtil is one unit kind's pressure, per nest or program-wide.
type KindUtil struct {
	Kind        string  `json:"kind"`
	Pipes       int     `json:"pipes"`
	Utilization float64 `json:"utilization"`
}

// PathStep is one instruction on a nest's binding critical path.
type PathStep struct {
	Instr  int    `json:"instr"`
	Op     string `json:"op"`
	Start  int    `json:"start"`
	Finish int    `json:"finish"`
	// Edge names the constraint chaining this step to the previous
	// one: "dep", "resource", "dispatch", or "" for the path origin.
	Edge string `json:"edge,omitempty"`
	// Unit is the contended unit kind on "resource" edges.
	Unit string `json:"unit,omitempty"`
}

// Nest is the diagnosis of one innermost straight-line loop nest.
type Nest struct {
	// Label names the nest by its loop variables, outermost first
	// (e.g. "do j/do i"); "body" for a loopless program.
	Label string `json:"label"`
	// Pos is the innermost loop's source position.
	Pos string `json:"pos,omitempty"`
	// Instructions counts basic operations after back-end imitation.
	Instructions int `json:"instructions"`
	// BlockCost is the Tetris cost of one execution of the lowered
	// body.
	BlockCost int `json:"block_cost"`
	// Weight is the nest's estimated share of the program's in-core
	// cycles, in [0, 1] (block cost × trip counts, normalized).
	Weight float64 `json:"weight"`
	// Bottleneck is the nest's first-saturating unit kind, with its
	// utilization and the earliest slot where every pipe of that kind
	// is simultaneously busy (-1 if never).
	Bottleneck     string     `json:"bottleneck"`
	BottleneckUtil float64    `json:"bottleneck_util"`
	SaturatedAt    int        `json:"saturated_at"`
	Kinds          []KindUtil `json:"kinds"`
	// Path is the binding critical path of the block's schedule and
	// PathCycles the span it explains (≤ BlockCost); DepHeight is the
	// infinite-resource dependence height of the same block.
	Path       []PathStep `json:"path"`
	PathCycles int        `json:"path_cycles"`
	DepHeight  int        `json:"dep_height"`
}

// WhatIf is the one-more-pipe experiment at program level: the whole
// program re-predicted on a machine with one extra pipe of the
// bottleneck kind. A Speedup below 1 is a faithful report, not an
// error — greedy scheduling is not monotone in resources (Graham's
// anomaly), so the model can predict a slowdown from extra hardware,
// and that prediction is itself diagnostic.
type WhatIf struct {
	Unit  string `json:"unit"`
	Pipes int    `json:"pipes"`
	// Cycles is the re-predicted total at the same nominal point;
	// Speedup is baseline / Cycles.
	Cycles  float64 `json:"cycles"`
	Speedup float64 `json:"speedup"`
}

// Report is the full diagnosis of one program on one machine.
type Report struct {
	Machine string `json:"machine"`
	// Cycles is the predicted total at the nominal point and
	// MemoryCycles the cache/TLB share of it (§2.3); InCoreCycles is
	// their difference. MemoryBound labels programs whose memory share
	// reaches half the total.
	Cycles       float64 `json:"cycles"`
	MemoryCycles float64 `json:"memory_cycles"`
	MemoryBound  bool    `json:"memory_bound"`
	// Bottleneck is the weighted dominant unit kind across nests.
	Bottleneck     string     `json:"bottleneck"`
	BottleneckUtil float64    `json:"bottleneck_util"`
	Kinds          []KindUtil `json:"kinds"`
	Nests          []Nest     `json:"nests"`
	WhatIf         *WhatIf    `json:"what_if,omitempty"`
}

// InCoreCycles is the scheduling (non-memory) share of Cycles.
func (r *Report) InCoreCycles() float64 { return r.Cycles - r.MemoryCycles }

// Summary is the one-line digest the golden explain corpus pins: the
// program bottleneck and its utilization, the dominant nest's
// critical-path span, and the top three unit utilizations. Fixed
// float precision keeps the digest byte-stable across runs.
func (r *Report) Summary() string {
	b := r.Bottleneck
	if b == "" {
		b = "-"
	}
	path, bestW := 0, math.Inf(-1)
	for _, n := range r.Nests {
		if n.Weight > bestW {
			bestW, path = n.Weight, n.PathCycles
		}
	}
	kinds := append([]KindUtil(nil), r.Kinds...)
	sort.Slice(kinds, func(i, j int) bool {
		if kinds[i].Utilization != kinds[j].Utilization {
			return kinds[i].Utilization > kinds[j].Utilization
		}
		return kinds[i].Kind < kinds[j].Kind
	})
	if len(kinds) > 3 {
		kinds = kinds[:3]
	}
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s:%.4f", k.Kind, k.Utilization)
	}
	return fmt.Sprintf("bottleneck=%s util=%.4f path=%d top=[%s]",
		b, r.BottleneckUtil, path, strings.Join(parts, " "))
}

// Program diagnoses a parsed, analyzed program on m. The returned
// report prices the program exactly as Predict does (same aggregation,
// same lowering), so its Cycles agree with Prediction.EvalAt at the
// same point.
func Program(prog *source.Program, tbl *sem.Table, m *machine.Machine, opt Options) (*Report, error) {
	aopt := aggregate.DefaultOptions()
	if opt.Aggregate != nil {
		aopt = *opt.Aggregate
	}
	lopt := lower.DefaultOptions()
	if opt.Lower != nil {
		lopt = *opt.Lower
	}

	res, err := aggregate.New(tbl, m, aopt).Program(prog)
	if err != nil {
		return nil, err
	}
	rep := &Report{Machine: m.Name}
	point := evalPoint(res, opt.Nominal)
	if rep.Cycles, err = res.Cost.Eval(point); err != nil {
		return nil, err
	}
	if rep.MemoryCycles, err = res.Memory.Eval(point); err != nil {
		return nil, err
	}
	rep.MemoryBound = rep.Cycles > 0 && rep.MemoryCycles/rep.Cycles >= 0.5

	sites := collectNests(prog.Body, nil)
	if len(sites) == 0 {
		if body, ok := flattenStraight(prog.Body); ok && len(body) > 0 {
			sites = []nestSite{{body: body}}
		}
	}
	raw := make([]float64, len(sites))
	for i, site := range sites {
		nest, weight, err := diagnoseNest(tbl, m, site, lopt, opt.Tetris, opt.Nominal)
		if err != nil {
			return nil, err
		}
		rep.Nests = append(rep.Nests, nest)
		raw[i] = weight
	}
	normalizeWeights(rep.Nests, raw)
	rep.Kinds, rep.Bottleneck, rep.BottleneckUtil = programKinds(rep.Nests)

	if !opt.SkipWhatIf && rep.Bottleneck != "" {
		w, err := whatIf(prog, tbl, m, aopt, rep, opt.Nominal)
		if err != nil {
			return nil, err
		}
		rep.WhatIf = w
	}
	return rep, nil
}

// nestSite is one innermost straight-line body and its enclosing loop
// chain, outermost first.
type nestSite struct {
	body  []source.Stmt
	loops []*source.DoLoop
}

// collectNests finds every innermost loop body, the shape
// AnalyzeInnermostBlock singles out — but all of them, since a
// diagnosis must attribute cycles across kernels, not pick one. An
// innermost body that mixes straight statements with conditionals (but
// contains no deeper loop) is flattened: the If branches' statements
// join the diagnosed sequence in program order, so a guarded update
// counts as executed work. The guards themselves and the branch
// probability live in the aggregate layer, which supplies the weights;
// the nest diagnosis only asks how the hot path schedules.
func collectNests(stmts []source.Stmt, chain []*source.DoLoop) []nestSite {
	var out []nestSite
	for _, s := range stmts {
		switch x := s.(type) {
		case *source.DoLoop:
			inner := append(append([]*source.DoLoop{}, chain...), x)
			if body, ok := flattenStraight(x.Body); ok && len(body) > 0 {
				out = append(out, nestSite{body: body, loops: inner})
				continue
			}
			out = append(out, collectNests(x.Body, inner)...)
		case *source.IfStmt:
			out = append(out, collectNests(x.Then, chain)...)
			out = append(out, collectNests(x.Else, chain)...)
		}
	}
	return out
}

// flattenStraight linearizes a statement list into straight-line code,
// inlining If branches in program order. It refuses (ok=false) when
// the list contains a loop anywhere — that loop is the deeper nest to
// diagnose instead.
func flattenStraight(list []source.Stmt) ([]source.Stmt, bool) {
	var out []source.Stmt
	for _, s := range list {
		switch x := s.(type) {
		case *source.Assign, *source.CallStmt, *source.ContinueStmt:
			out = append(out, s)
		case *source.IfStmt:
			thenPart, ok := flattenStraight(x.Then)
			if !ok {
				return nil, false
			}
			elsePart, ok := flattenStraight(x.Else)
			if !ok {
				return nil, false
			}
			out = append(out, thenPart...)
			out = append(out, elsePart...)
		default:
			return nil, false
		}
	}
	return out, true
}

// diagnoseNest lowers one nest's body and runs the explained placement
// on it. The raw weight is the block cost times the nest's trip counts
// at the nominal point — each nest's rough share of in-core cycles.
func diagnoseNest(tbl *sem.Table, m *machine.Machine, site nestSite, lopt lower.Options, topt tetris.Options, nominal map[string]float64) (Nest, float64, error) {
	vars := make([]string, len(site.loops))
	labels := make([]string, len(site.loops))
	for i, l := range site.loops {
		vars[i] = l.Var
		labels[i] = "do " + l.Var
	}
	nest := Nest{Label: "body", SaturatedAt: -1}
	if len(site.loops) > 0 {
		nest.Label = strings.Join(labels, "/")
		nest.Pos = site.loops[len(site.loops)-1].Pos.String()
	}

	lw, err := lower.New(tbl, m, lopt).Body(site.body, vars)
	if err != nil {
		return Nest{}, 0, fmt.Errorf("explain: nest %s: %w", nest.Label, err)
	}
	ex, err := tetris.EstimateExplained(m, lw.Body, topt)
	if err != nil {
		return Nest{}, 0, fmt.Errorf("explain: nest %s: %w", nest.Label, err)
	}

	nest.Instructions = len(lw.Body.Instrs)
	nest.BlockCost = ex.Result.Cost
	nest.Bottleneck = string(ex.Bottleneck)
	nest.BottleneckUtil = ex.BottleneckUtil
	nest.SaturatedAt = ex.SaturatedAt
	nest.PathCycles = ex.PathCycles
	nest.DepHeight = ex.DepHeight
	for _, k := range ex.Kinds {
		nest.Kinds = append(nest.Kinds, KindUtil{Kind: string(k.Kind), Pipes: k.Pipes, Utilization: k.Utilization})
	}
	for _, s := range ex.Path {
		nest.Path = append(nest.Path, PathStep{
			Instr:  s.Instr,
			Op:     lw.Body.Instrs[s.Instr].Op.String(),
			Start:  s.Start,
			Finish: s.Finish,
			Edge:   s.Edge,
			Unit:   string(s.Unit),
		})
	}

	weight := float64(ex.Result.Cost)
	for _, l := range site.loops {
		weight *= tripAt(tbl, l, nominal)
	}
	return nest, weight, nil
}

// normalizeWeights turns raw per-nest cycle estimates into shares.
func normalizeWeights(nests []Nest, raw []float64) {
	var total float64
	for _, w := range raw {
		total += w
	}
	if total <= 0 {
		return
	}
	for i := range nests {
		nests[i].Weight = raw[i] / total
	}
}

// programKinds aggregates per-nest utilizations into program-wide
// pressure: each kind's utilization is the weight-averaged nest
// utilization, and the bottleneck is the kind with the maximum (ties
// break to the lexicographically smaller kind).
func programKinds(nests []Nest) ([]KindUtil, string, float64) {
	type acc struct {
		pipes int
		util  float64
		w     float64
	}
	byKind := map[string]*acc{}
	for _, n := range nests {
		for _, k := range n.Kinds {
			a := byKind[k.Kind]
			if a == nil {
				a = &acc{pipes: k.Pipes}
				byKind[k.Kind] = a
			}
			a.util += n.Weight * k.Utilization
			a.w += n.Weight
		}
	}
	kinds := make([]KindUtil, 0, len(byKind))
	for k, a := range byKind {
		u := 0.0
		if a.w > 0 {
			u = a.util / a.w
		}
		kinds = append(kinds, KindUtil{Kind: k, Pipes: a.pipes, Utilization: u})
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].Kind < kinds[j].Kind })
	bottleneck, best := "", 0.0
	for _, k := range kinds {
		if k.Utilization > best {
			bottleneck, best = k.Kind, k.Utilization
		}
	}
	return kinds, bottleneck, best
}

// whatIf re-predicts the whole program on a machine with one extra
// pipe of the report's bottleneck kind.
func whatIf(prog *source.Program, tbl *sem.Table, m *machine.Machine, aopt aggregate.Options, rep *Report, nominal map[string]float64) (*WhatIf, error) {
	kind := machine.UnitKind(rep.Bottleneck)
	m2, err := machine.WithExtraPipe(m, kind)
	if err != nil {
		return nil, err
	}
	res, err := aggregate.New(tbl, m2, aopt).Program(prog)
	if err != nil {
		return nil, err
	}
	cycles, err := res.Cost.Eval(evalPoint(res, nominal))
	if err != nil {
		return nil, err
	}
	w := &WhatIf{Unit: rep.Bottleneck, Pipes: m2.UnitCounts[kind], Cycles: cycles, Speedup: 1}
	if cycles > 0 {
		w.Speedup = rep.Cycles / cycles
	}
	return w, nil
}

// evalPoint builds the evaluation assignment for a pricing result:
// nominal values win, missing probabilities become 0.5, and every
// other missing unknown becomes defaultUnknown.
func evalPoint(res aggregate.Result, nominal map[string]float64) map[symexpr.Var]float64 {
	kind := make(map[symexpr.Var]string, len(res.Unknowns))
	for _, u := range res.Unknowns {
		kind[u.Var] = u.Kind
	}
	assign := map[symexpr.Var]float64{}
	for _, vs := range [][]symexpr.Var{res.Cost.Vars(), res.Memory.Vars()} {
		for _, v := range vs {
			if _, ok := assign[v]; ok {
				continue
			}
			if val, ok := nominal[string(v)]; ok {
				assign[v] = val
				continue
			}
			if kind[v] == "probability" {
				assign[v] = 0.5
			} else {
				assign[v] = defaultUnknown
			}
		}
	}
	return assign
}

// tripAt evaluates a loop's trip count at the nominal point, clamping
// to at least one iteration. Unresolvable bound expressions assume
// defaultUnknown, like every other unknown.
func tripAt(tbl *sem.Table, l *source.DoLoop, nominal map[string]float64) float64 {
	lb := exprAt(tbl, l.Lb, nominal)
	ub := exprAt(tbl, l.Ub, nominal)
	step := 1.0
	if l.Step != nil {
		if s := exprAt(tbl, l.Step, nominal); s != 0 {
			step = s
		}
	}
	t := math.Floor((ub-lb)/step) + 1
	if t < 1 {
		return 1
	}
	return t
}

// exprAt is a best-effort numeric evaluation of a bound expression at
// the nominal point — only for nest weights, never for costs.
func exprAt(tbl *sem.Table, x source.Expr, nominal map[string]float64) float64 {
	if x == nil {
		return 0
	}
	if c, ok := tbl.FoldConst(x); ok {
		return c
	}
	switch v := x.(type) {
	case *source.VarRef:
		if val, ok := nominal[v.Name]; ok {
			return val
		}
		return defaultUnknown
	case *source.UnExpr:
		if v.Neg {
			return -exprAt(tbl, v.X, nominal)
		}
	case *source.BinExpr:
		l, r := exprAt(tbl, v.L, nominal), exprAt(tbl, v.R, nominal)
		switch v.Kind {
		case source.BinAdd:
			return l + r
		case source.BinSub:
			return l - r
		case source.BinMul:
			return l * r
		case source.BinDiv:
			if r != 0 {
				return l / r
			}
		case source.BinPow:
			return math.Pow(l, r)
		}
	}
	return defaultUnknown
}
