package oracle

import (
	"context"
	"errors"
	"testing"
)

// TestPackCtxPreCancelled: with the context already done, the search
// expands nothing — but the program-order incumbent is still seeded,
// so the result is the greedy schedule with Proven=false alongside
// the context error (the budget-truncation contract).
func TestPackCtxPreCancelled(t *testing.T) {
	m := toyMachine()
	b := hoistBlock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := PackCtx(ctx, m, b, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Proven {
		t.Error("cancelled search claims a proven optimum")
	}
	greedy, gerr := GreedyInOrder(m, b, Options{})
	if gerr != nil {
		t.Fatal(gerr)
	}
	if res.Cost != greedy.Cost {
		t.Errorf("cancelled incumbent cost = %d, want greedy %d", res.Cost, greedy.Cost)
	}
}

// TestPackCtxBackgroundMatchesPack: threading a live context changes
// nothing about the search.
func TestPackCtxBackgroundMatchesPack(t *testing.T) {
	m := toyMachine()
	b := hoistBlock()
	plain, err := Pack(m, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := PackCtx(context.Background(), m, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cost != ctxed.Cost || plain.Proven != ctxed.Proven || plain.Nodes != ctxed.Nodes {
		t.Errorf("PackCtx(Background) = %+v, Pack = %+v", ctxed, plain)
	}
}
