package oracle

import (
	"math/bits"

	"perfpredict/internal/machine"
)

// grid is one pipe's occupancy as a dense bitset over time slots,
// grown on demand. It is the oracle's deliberately simple counterpart
// to the tetris run-length slot lists; the range operations work a
// word at a time with masks rather than bit-by-bit.
type grid struct {
	words []uint64
}

func (g *grid) bit(i int) bool {
	w := i >> 6
	if w >= len(g.words) {
		return false
	}
	return g.words[w]&(1<<(uint(i)&63)) != 0
}

// maskRange visits the words overlapping [from, from+n), handing fn
// the word index and the mask of in-range bits within that word. fn
// returning false stops the walk early.
func (g *grid) maskRange(from, n int, fn func(w int, mask uint64) bool) {
	for i := from; i < from+n; {
		w := i >> 6
		lo := uint(i) & 63
		span := 64 - int(lo)
		if rest := from + n - i; rest < span {
			span = rest
		}
		mask := (^uint64(0) >> (64 - uint(span))) << lo
		if !fn(w, mask) {
			return
		}
		i += span
	}
}

// freeRange reports whether slots [from, from+n) are all empty.
func (g *grid) freeRange(from, n int) bool {
	free := true
	g.maskRange(from, n, func(w int, mask uint64) bool {
		if w >= len(g.words) {
			return false // beyond stored words: all empty
		}
		if g.words[w]&mask != 0 {
			free = false
			return false
		}
		return true
	})
	return free
}

// occupyRange marks slots [from, from+n) filled.
func (g *grid) occupyRange(from, n int) {
	if n <= 0 {
		return
	}
	for w := (from + n - 1) >> 6; w >= len(g.words); {
		g.words = append(g.words, 0)
	}
	g.maskRange(from, n, func(w int, mask uint64) bool {
		g.words[w] |= mask
		return true
	})
}

// clearRange empties slots [from, from+n) (undo of occupyRange).
func (g *grid) clearRange(from, n int) {
	g.maskRange(from, n, func(w int, mask uint64) bool {
		g.words[w] &^= mask
		return true
	})
}

// extent returns the first and last filled slots, or (-1, -1).
func (g *grid) extent() (first, last int) {
	first, last = -1, -1
	for w, word := range g.words {
		if word == 0 {
			continue
		}
		if first == -1 {
			first = w<<6 + bits.TrailingZeros64(word)
		}
		last = w<<6 + 63 - bits.LeadingZeros64(word)
	}
	return first, last
}

// countFilledBelow counts filled slots in [0, upto).
func (g *grid) countFilledBelow(upto int) int {
	if upto <= 0 {
		return 0
	}
	total := 0
	for w, word := range g.words {
		base := w << 6
		if base >= upto {
			break
		}
		if rem := upto - base; rem < 64 {
			word &= (uint64(1) << uint(rem)) - 1
		}
		total += bits.OnesCount64(word)
	}
	return total
}

// frame records everything placeInstr changed, for exact undo.
type frame struct {
	instr    int
	occs     []occRec // occupied ranges
	lats     []latRec // latEnd overwrites
	dispatch []int    // cycles whose dispatch count was incremented
	minOcc   int
	curEnd   int
}

type occRec struct{ pipe, from, n int }
type latRec struct{ pipe, old int }

// placeInstr schedules instruction i by the same rule tetris.Estimate
// uses — each atomic op of its expansion at the lowest time slot where
// every segment fits on a distinct pipe of its kind and the dispatch
// width is not exhausted — and returns the undo frame.
func (p *packer) placeInstr(i int) frame {
	f := frame{instr: i, minOcc: p.minOcc, curEnd: p.curEnd}
	in := p.instrs[i]
	ready, dataReady := 0, 0
	for _, j := range p.deps[i] {
		if p.instrs[j].Op.IsMem() {
			if p.finish[j] > ready {
				ready = p.finish[j]
			}
		} else if p.finish[j] > dataReady {
			dataReady = p.finish[j]
		}
	}
	if !in.Op.IsStore() && dataReady > ready {
		ready = dataReady
	}
	cur := ready
	start := -1
	for _, a := range p.seqs[i] {
		t := p.placeOne(a, cur, &f)
		if start == -1 {
			start = t
		}
		cur = t + a.Latency()
	}
	if start == -1 { // empty expansion: zero-latency at ready
		start = ready
		cur = ready
	}
	end := cur
	if in.Op.IsStore() && dataReady+1 > end {
		// Pending-store queue: the memory effect completes once the
		// datum arrives, even though the unit slots executed earlier.
		end = dataReady + 1
	}
	p.issue[i] = start
	p.finish[i] = end
	if end > p.curEnd {
		p.curEnd = end
	}
	p.scheduled[i] = true
	p.nSched++
	p.order = append(p.order, i)
	return f
}

// placeOne scans t upward from ready for the lowest slot where a fits
// — the "lowest feasible position" semantics, implemented as a plain
// linear scan with no skip heuristics.
func (p *packer) placeOne(a machine.AtomicOp, ready int, f *frame) int {
	t := ready
	if t < 0 {
		t = 0
	}
	for ; ; t++ {
		if p.width > 0 && p.dispatchAt(t) >= p.width {
			continue
		}
		if !p.fitsAt(a, t) {
			continue
		}
		// Commit: p.chosen holds the pipe choice fitsAt made.
		for si, seg := range a.Segments {
			pipe := p.chosen[si]
			if seg.Noncov > 0 {
				p.occ[pipe].occupyRange(t+seg.Start, seg.Noncov)
				f.occs = append(f.occs, occRec{pipe, t + seg.Start, seg.Noncov})
				if t+seg.Start < p.minOcc {
					p.minOcc = t + seg.Start
				}
			}
			if e := t + seg.End(); e > p.latEnd[pipe] {
				f.lats = append(f.lats, latRec{pipe, p.latEnd[pipe]})
				p.latEnd[pipe] = e
				if e > p.curEnd {
					p.curEnd = e
				}
			}
		}
		p.incDispatch(t)
		f.dispatch = append(f.dispatch, t)
		return t
	}
}

// fitsAt checks whether every segment of a fits at base time t,
// assigning each to the first free, not-yet-used pipe of its kind (the
// same greedy pipe choice tetris.tryFit makes). On success the chosen
// pipes are left in p.chosen.
func (p *packer) fitsAt(a machine.AtomicOp, t int) bool {
	for i := range p.used {
		p.used[i] = false
	}
	if cap(p.chosen) < len(a.Segments) {
		p.chosen = make([]int, len(a.Segments))
	}
	p.chosen = p.chosen[:len(a.Segments)]
	for si, seg := range a.Segments {
		found := -1
		for _, pipe := range p.byKind[seg.Unit] {
			if p.used[pipe] {
				continue
			}
			if seg.Noncov == 0 || p.occ[pipe].freeRange(t+seg.Start, seg.Noncov) {
				found = pipe
				break
			}
		}
		if found == -1 {
			return false
		}
		p.used[found] = true
		p.chosen[si] = found
	}
	return true
}

func (p *packer) dispatchAt(t int) int {
	if t < len(p.dispatch) {
		return p.dispatch[t]
	}
	return 0
}

func (p *packer) incDispatch(t int) {
	for len(p.dispatch) <= t {
		p.dispatch = append(p.dispatch, 0)
	}
	p.dispatch[t]++
}

// undo reverts placeInstr exactly.
func (p *packer) undo(f frame) {
	for _, o := range f.occs {
		p.occ[o.pipe].clearRange(o.from, o.n)
	}
	// latEnd overwrites are recorded oldest-first per pipe; restoring
	// in reverse order reinstates the original value.
	for i := len(f.lats) - 1; i >= 0; i-- {
		p.latEnd[f.lats[i].pipe] = f.lats[i].old
	}
	for _, t := range f.dispatch {
		p.dispatch[t]--
	}
	p.minOcc = f.minOcc
	p.curEnd = f.curEnd
	p.scheduled[f.instr] = false
	p.nSched--
	p.order = p.order[:len(p.order)-1]
	p.issue[f.instr] = 0
	p.finish[f.instr] = 0
}
