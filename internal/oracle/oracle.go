// Package oracle computes exact optimal Tetris packings by exhaustive
// branch-and-bound, serving as the ground truth that differential
// fuzzing compares tetris.Estimate against.
//
// The approximation in package tetris is a *serial schedule generation
// scheme*: it walks the block in program order and drops every
// operation into the lowest feasible time slots. The oracle explores
// that same placement rule under **every** dependence-respecting
// instruction order, so its search space provably contains the
// approximation's schedule — which makes
//
//	tetris.Estimate(b).Cost >= oracle.Pack(b).Cost
//
// an invariant that holds by construction for a correct implementation
// (any violation is a bug in one of the two placers, the dependence
// filter, or the pooled scratch state). For the makespan objective the
// set of schedules generated this way ("active schedules") contains a
// global optimum, so on blocks where the search completes
// (Result.Proven) the oracle cost is the exact optimum and the
// approx/exact ratio measures the greedy's true quality.
//
// The oracle is deliberately an independent implementation: dense
// per-pipe bit grids instead of run-length slot lists, no pooling, no
// incremental scratch — simple enough to trust, slow enough to only
// run on fuzzing corpora (blocks up to Options.MaxOps operations).
package oracle

import (
	"context"
	"fmt"
	"math"
	"sort"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
	"perfpredict/internal/tetris"
)

// Options tune the exact search.
type Options struct {
	// MaxOps bounds the block size the search accepts; 0 means the
	// default of 24. Larger blocks return an error rather than running
	// forever.
	MaxOps int
	// NodeBudget bounds the branch-and-bound nodes expanded; 0 means
	// the default of 1<<20. On exhaustion the best schedule found so
	// far is returned with Proven=false — still an upper bound on the
	// optimum, and still never above the greedy approximation.
	NodeBudget int
	// MayAlias selects the conservative memory-dependence filter; it
	// must match the tetris.Options the oracle is compared against.
	MayAlias bool
	// DispatchWidth overrides the machine's dispatch width; 0 keeps it.
	DispatchWidth int
}

// Result is an exact (or budget-truncated) packing.
type Result struct {
	// Cost, Start and End mirror tetris.Result: makespan between the
	// lowest occupied slot and the highest dependent-visible end.
	Cost, Start, End int
	// Order is the instruction order achieving Cost.
	Order []int
	// PlaceTime is the issue slot of each instruction under Order,
	// indexed by original instruction index.
	PlaceTime []int
	// Shape is the cost block of the best schedule.
	Shape tetris.CostBlock
	// Nodes counts branch-and-bound nodes expanded.
	Nodes int
	// Proven reports that the search ran to completion: Cost is the
	// exact minimum over all dependence-respecting placement orders.
	Proven bool
}

const (
	defaultMaxOps     = 24
	defaultNodeBudget = 1 << 20
)

// Pack searches all dependence-respecting instruction orders for the
// cheapest packing of b on m.
func Pack(m *machine.Machine, b *ir.Block, opt Options) (Result, error) {
	return PackCtx(context.Background(), m, b, opt)
}

// PackCtx is Pack under a context: the branch-and-bound polls ctx
// every ctxCheckStride expanded nodes and unwinds once it is done, so
// an abandoned exact search stops burning CPU promptly. On
// cancellation the incumbent found so far is returned with
// Proven=false alongside ctx.Err() — still a valid upper bound on the
// optimum (the program-order incumbent is seeded before the search),
// exactly like a budget truncation.
func PackCtx(ctx context.Context, m *machine.Machine, b *ir.Block, opt Options) (Result, error) {
	p, err := newPacker(m, b, opt)
	if err != nil {
		return Result{}, err
	}
	p.ctx = ctx
	// Program order first: the incumbent equals the greedy
	// approximation's schedule, so the returned best can never exceed
	// it even when the budget truncates the search.
	p.runProgramOrder()
	p.dfs()
	res := p.best
	res.Nodes = p.nodes
	res.Proven = !p.truncated
	return res, ctx.Err()
}

// ctxCheckStride is how many branch-and-bound nodes run between
// context polls: frequent enough that cancellation lands within
// microseconds, rare enough that the poll is invisible in the node
// rate.
const ctxCheckStride = 1024

// GreedyInOrder places b in program order through the oracle's own
// placement engine — an independent reimplementation of the
// tetris.Estimate placement rule. Differential fuzzing asserts its
// Cost/Start/End/Shape/PlaceTime agree with tetris.Estimate exactly.
func GreedyInOrder(m *machine.Machine, b *ir.Block, opt Options) (Result, error) {
	opt.MaxOps = math.MaxInt // greedy is linear; no size cap needed
	p, err := newPacker(m, b, opt)
	if err != nil {
		return Result{}, err
	}
	p.runProgramOrder()
	res := p.best
	res.Nodes = 0
	res.Proven = false
	return res, nil
}

// packer is the search state. All mutable placement state supports
// exact undo, so the DFS never copies grids.
type packer struct {
	b      *ir.Block
	instrs []ir.Instr
	seqs   [][]machine.AtomicOp
	deps   [][]int
	width  int

	inst   []machine.UnitInstance
	byKind map[machine.UnitKind][]int
	// kindOf[p] is the kind of pipe p; latEnd[p] its furthest
	// dependent-visible latency end.
	occ    []grid
	latEnd []int

	dispatch  []int
	scheduled []bool
	nSched    int
	issue     []int
	finish    []int
	minOcc    int // math.MaxInt while nothing occupied
	curEnd    int

	// symmetry-breaking equivalence classes: eqClass[i] == eqClass[j]
	// means i and j are fully interchangeable (same op, payload, dep
	// set and successor set).
	eqClass []int

	// tail latency lower bounds for pruning.
	totalLat []int

	ctx       context.Context
	budget    int
	nodes     int
	truncated bool

	order  []int
	best   Result
	used   []bool // fitsAt scratch: per-pipe taken marks
	chosen []int  // fitsAt scratch: segment→pipe assignment
}

func newPacker(m *machine.Machine, b *ir.Block, opt Options) (*packer, error) {
	maxOps := opt.MaxOps
	if maxOps == 0 {
		maxOps = defaultMaxOps
	}
	n := len(b.Instrs)
	if n > maxOps {
		return nil, fmt.Errorf("oracle: block has %d instructions, cap is %d", n, maxOps)
	}
	budget := opt.NodeBudget
	if budget <= 0 {
		budget = defaultNodeBudget
	}
	p := &packer{
		b:         b,
		instrs:    b.Instrs,
		deps:      b.Deps(opt.MayAlias),
		width:     m.DispatchWidth,
		inst:      m.Units(),
		byKind:    map[machine.UnitKind][]int{},
		scheduled: make([]bool, n),
		issue:     make([]int, n),
		finish:    make([]int, n),
		minOcc:    math.MaxInt,
		budget:    budget,
		order:     make([]int, 0, n),
	}
	if opt.DispatchWidth > 0 {
		p.width = opt.DispatchWidth
	}
	for i, u := range p.inst {
		p.byKind[u.Kind] = append(p.byKind[u.Kind], i)
	}
	p.occ = make([]grid, len(p.inst))
	p.latEnd = make([]int, len(p.inst))
	p.used = make([]bool, len(p.inst))
	p.seqs = make([][]machine.AtomicOp, n)
	p.totalLat = make([]int, n)
	for i, in := range b.Instrs {
		seq, err := m.Lookup(in.Op)
		if err != nil {
			return nil, err
		}
		p.seqs[i] = seq
		for _, a := range seq {
			p.totalLat[i] += a.Latency()
			// Feasibility precheck: every segment's unit must exist,
			// and an atomic op may not demand more distinct pipes of a
			// kind than the machine has (each segment of one atomic op
			// occupies its own pipe). Validated machines guarantee
			// this; hand-built tables may not, and without the check
			// the placement scan would never terminate.
			perKind := map[machine.UnitKind]int{}
			for _, seg := range a.Segments {
				pipes, ok := p.byKind[seg.Unit]
				if !ok {
					return nil, fmt.Errorf("oracle: instr %d (%s): atomic op %s references unknown unit %s",
						i, in, a.Name, seg.Unit)
				}
				perKind[seg.Unit]++
				if perKind[seg.Unit] > len(pipes) {
					return nil, fmt.Errorf("oracle: instr %d (%s): atomic op %s needs %d pipes of %s, machine has %d",
						i, in, a.Name, perKind[seg.Unit], seg.Unit, len(pipes))
				}
			}
		}
	}
	p.buildEquivalence()
	p.best.Cost = math.MaxInt
	return p, nil
}

// buildEquivalence groups fully interchangeable instructions: same
// operation and payload, identical dependence sets and identical
// successor sets. Scheduling any member of a ready class first is
// isomorphic to scheduling another, so the DFS only branches on the
// lowest-index ready member of each class.
func (p *packer) buildEquivalence() {
	n := len(p.instrs)
	succs := make([][]int, n)
	for i, ds := range p.deps {
		for _, j := range ds {
			succs[j] = append(succs[j], i)
		}
	}
	key := make([]string, n)
	for i, in := range p.instrs {
		ds := append([]int(nil), p.deps[i]...)
		sort.Ints(ds)
		ss := append([]int(nil), succs[i]...)
		sort.Ints(ss)
		key[i] = fmt.Sprintf("%d|%s|%s|%g|%v|%v", in.Op, in.Addr, in.Base, in.Imm, ds, ss)
	}
	p.eqClass = make([]int, n)
	classes := map[string]int{}
	for i, k := range key {
		id, ok := classes[k]
		if !ok {
			id = len(classes)
			classes[k] = id
		}
		p.eqClass[i] = id
	}
}

// runProgramOrder establishes the incumbent by scheduling in program
// order — exactly what the greedy approximation does.
func (p *packer) runProgramOrder() {
	frames := make([]frame, 0, len(p.instrs))
	for i := range p.instrs {
		frames = append(frames, p.placeInstr(i))
	}
	p.record()
	for i := len(frames) - 1; i >= 0; i-- {
		p.undo(frames[i])
	}
}

// dfs branches over which ready instruction to schedule next.
func (p *packer) dfs() {
	if p.truncated {
		return
	}
	if p.nodes >= p.budget {
		p.truncated = true
		return
	}
	if p.ctx != nil && p.nodes%ctxCheckStride == 0 && p.ctx.Err() != nil {
		p.truncated = true
		return
	}
	p.nodes++
	n := len(p.instrs)
	if p.nSched == n {
		p.record()
		return
	}
	if p.prune() {
		return
	}
	seenClass := map[int]bool{}
	for i := 0; i < n; i++ {
		if p.scheduled[i] || !p.ready(i) {
			continue
		}
		if seenClass[p.eqClass[i]] {
			continue // isomorphic to a branch already taken
		}
		seenClass[p.eqClass[i]] = true
		f := p.placeInstr(i)
		p.dfs()
		p.undo(f)
	}
}

// ready reports that every dependence of i is scheduled.
func (p *packer) ready(i int) bool {
	for _, j := range p.deps[i] {
		if !p.scheduled[j] {
			return false
		}
	}
	return true
}

// prune returns true when no completion of the current partial
// schedule can beat the incumbent. Final End is at least lbEnd (the
// current end, or any unscheduled instruction's earliest possible
// finish ignoring resources), and final Start can only be <= the
// current minimum occupied slot, so final cost >= lbEnd - minOcc.
func (p *packer) prune() bool {
	if p.minOcc == math.MaxInt {
		return false // nothing placed yet; Start unbounded above
	}
	lbEnd := p.curEnd
	n := len(p.instrs)
	lbF := make([]int, n)
	for i := 0; i < n; i++ { // deps point backward: index order is topological
		if p.scheduled[i] {
			lbF[i] = p.finish[i]
			continue
		}
		ready, dataReady := 0, 0
		for _, j := range p.deps[i] {
			if p.instrs[j].Op.IsMem() {
				if lbF[j] > ready {
					ready = lbF[j]
				}
			} else if lbF[j] > dataReady {
				dataReady = lbF[j]
			}
		}
		in := p.instrs[i]
		if !in.Op.IsStore() && dataReady > ready {
			ready = dataReady
		}
		f := ready + p.totalLat[i]
		if in.Op.IsStore() && dataReady+1 > f {
			f = dataReady + 1
		}
		lbF[i] = f
		if f > lbEnd {
			lbEnd = f
		}
	}
	return lbEnd-p.minOcc >= p.best.Cost
}

// record captures the current complete schedule if it beats the best.
func (p *packer) record() {
	start := p.minOcc
	if start == math.MaxInt {
		start = 0
	}
	cost := p.curEnd - start
	if cost < 0 {
		cost = 0
	}
	if cost >= p.best.Cost {
		return
	}
	p.best = Result{
		Cost:      cost,
		Start:     start,
		End:       p.curEnd,
		Order:     append([]int(nil), p.order...),
		PlaceTime: append([]int(nil), p.issue...),
		Shape:     p.shape(start, p.curEnd),
	}
}

// shape summarizes the occupied region exactly as tetris.costBlock
// does: per-kind first/last filled slots relative to lo and total
// filled (noncoverable) cycles.
func (p *packer) shape(lo, hi int) tetris.CostBlock {
	cb := tetris.CostBlock{
		Height: hi - lo,
		First:  map[machine.UnitKind]int{},
		Last:   map[machine.UnitKind]int{},
		Busy:   map[machine.UnitKind]int{},
	}
	for i, u := range p.inst {
		f, l := p.occ[i].extent()
		if f < 0 {
			continue
		}
		rf, rl := f-lo, l-lo
		if cur, ok := cb.First[u.Kind]; !ok || rf < cur {
			cb.First[u.Kind] = rf
		}
		if cur, ok := cb.Last[u.Kind]; !ok || rl > cur {
			cb.Last[u.Kind] = rl
		}
		cb.Busy[u.Kind] += p.occ[i].countFilledBelow(hi)
	}
	return cb
}
