package oracle

import (
	"reflect"
	"testing"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
	"perfpredict/internal/tetris"
)

// toyMachine has one slow pipe (K1), one fast pipe (K2) and three
// mapped ops, enough to exercise ordering effects.
func toyMachine() *machine.Machine {
	return &machine.Machine{
		Name:          "Toy",
		UnitCounts:    map[machine.UnitKind]int{"K1": 1, "K2": 1},
		DispatchWidth: 4,
		Table: map[ir.Op][]machine.AtomicOp{
			ir.OpIAdd: {{Name: "add", Segments: []machine.Segment{{Unit: "K1", Noncov: 1}}}},
			// A 1-cycle issue with a long coverable tail: the classic
			// case where issuing it early hides its latency.
			ir.OpFSqrt: {{Name: "sqrt", Segments: []machine.Segment{{Unit: "K1", Noncov: 1, Cov: 10}}}},
			ir.OpFAdd:  {{Name: "fadd", Segments: []machine.Segment{{Unit: "K2", Noncov: 1}}}},
		},
	}
}

// hoistBlock is 4 independent adds, an independent sqrt, and an fadd
// consuming the sqrt. Program order prices the sqrt last on its pipe,
// exposing its full latency; the optimal order issues it first.
func hoistBlock() *ir.Block {
	b := &ir.Block{Label: "hoist"}
	for r := ir.Reg(0); r < 4; r++ {
		b.Append(ir.NewInstr(ir.OpIAdd, 10+r))
	}
	b.Append(ir.NewInstr(ir.OpFSqrt, 20))
	b.Append(ir.NewInstr(ir.OpFAdd, 21, 20))
	return b
}

func TestPackBeatsProgramOrder(t *testing.T) {
	m := toyMachine()
	b := hoistBlock()
	approx, err := tetris.Estimate(m, b, tetris.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Pack(m, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Proven {
		t.Fatalf("search did not complete on a 6-op block (nodes=%d)", exact.Nodes)
	}
	// Greedy: adds at K1 slots 0-3, sqrt at 4 with latency through 15,
	// fadd at 15 -> cost 16. Optimal: sqrt first -> cost 12.
	if approx.Cost != 16 {
		t.Errorf("approx cost = %d, want 16", approx.Cost)
	}
	if exact.Cost != 12 {
		t.Errorf("exact cost = %d, want 12", exact.Cost)
	}
	if exact.Cost > approx.Cost {
		t.Errorf("oracle %d exceeds approximation %d", exact.Cost, approx.Cost)
	}
	// The winning order must schedule the sqrt (index 4) first.
	if exact.Order[0] != 4 {
		t.Errorf("best order %v does not issue the sqrt first", exact.Order)
	}
}

func TestGreedyInOrderMatchesTetris(t *testing.T) {
	m, err := machine.Lookup("POWER1")
	if err != nil {
		t.Fatal(err)
	}
	blocks := map[string]*ir.Block{
		"hoist": hoistBlock(),
		"daxpy": func() *ir.Block {
			b := &ir.Block{}
			i0 := b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "x(i)", Base: "x"})
			i1 := b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 1, Addr: "y(i)", Base: "y"})
			i2 := b.Append(ir.NewInstr(ir.OpFMA, 2, ir.Reg(i0), ir.Reg(i1), 3))
			_ = i2
			b.Append(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{2}, Addr: "y(i)", Base: "y"})
			return b
		}(),
		"mixed": func() *ir.Block {
			b := &ir.Block{}
			b.Append(ir.NewInstr(ir.OpLoadImm, 0))
			b.Append(ir.NewInstr(ir.OpIAdd, 1, 0, 0))
			b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 2, Addr: "a(i)", Base: "a"})
			b.Append(ir.NewInstr(ir.OpFMul, 3, 2, 2))
			b.Append(ir.NewInstr(ir.OpFDiv, 4, 3, 2))
			b.Append(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{4}, Addr: "b(i)", Base: "b"})
			b.Append(ir.NewInstr(ir.OpICmp, 5, 1, 0))
			b.Append(ir.Instr{Op: ir.OpBranch, Srcs: []ir.Reg{5}})
			return b
		}(),
	}
	for name, b := range blocks {
		for _, mayAlias := range []bool{false, true} {
			want, err := tetris.Estimate(m, b, tetris.Options{MayAlias: mayAlias})
			if err != nil {
				t.Fatalf("%s: tetris: %v", name, err)
			}
			got, err := GreedyInOrder(m, b, Options{MayAlias: mayAlias})
			if err != nil {
				t.Fatalf("%s: oracle greedy: %v", name, err)
			}
			if got.Cost != want.Cost || got.Start != want.Start || got.End != want.End {
				t.Errorf("%s (mayAlias=%v): oracle greedy (%d,%d,%d) != tetris (%d,%d,%d)",
					name, mayAlias, got.Cost, got.Start, got.End, want.Cost, want.Start, want.End)
			}
			if !reflect.DeepEqual(got.PlaceTime, want.PlaceTime) {
				t.Errorf("%s (mayAlias=%v): issue slots %v != %v", name, mayAlias, got.PlaceTime, want.PlaceTime)
			}
			if !reflect.DeepEqual(got.Shape, want.Shape) {
				t.Errorf("%s (mayAlias=%v): shape %+v != %+v", name, mayAlias, got.Shape, want.Shape)
			}
		}
	}
}

func TestPackRespectsDependences(t *testing.T) {
	m, err := machine.Lookup("POWER1")
	if err != nil {
		t.Fatal(err)
	}
	// A pure chain: only one topological order exists, so the oracle
	// must agree with the approximation exactly.
	b := &ir.Block{}
	prev := b.Append(ir.NewInstr(ir.OpFAdd, 0))
	for r := ir.Reg(1); r < 6; r++ {
		prev = b.Append(ir.NewInstr(ir.OpFAdd, r, ir.Reg(prev-0)))
		_ = prev
	}
	approx, err := tetris.Estimate(m, b, tetris.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Pack(m, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Proven {
		t.Fatal("chain search did not complete")
	}
	if exact.Cost != approx.Cost {
		t.Errorf("chain: exact %d != approx %d", exact.Cost, approx.Cost)
	}
}

func TestPackCapsAndBudget(t *testing.T) {
	m, err := machine.Lookup("POWER1")
	if err != nil {
		t.Fatal(err)
	}
	b := &ir.Block{}
	for r := ir.Reg(0); r < 30; r++ {
		b.Append(ir.NewInstr(ir.OpIAdd, r))
	}
	if _, err := Pack(m, b, Options{}); err == nil {
		t.Error("30-op block accepted despite the default 24-op cap")
	}
	// With a raised cap and a tiny budget the search truncates but
	// still returns the program-order incumbent.
	small := &ir.Block{}
	for r := ir.Reg(0); r < 12; r++ {
		small.Append(ir.NewInstr(ir.OpIAdd, r))
	}
	res, err := Pack(m, small, Options{NodeBudget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven {
		t.Error("5-node budget reported a proven optimum over 12 independent ops")
	}
	approx, err := tetris.Estimate(m, small, tetris.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > approx.Cost {
		t.Errorf("truncated search cost %d exceeds approximation %d", res.Cost, approx.Cost)
	}
}

func TestPackRejectsImpossibleExpansion(t *testing.T) {
	// Two same-kind segments in one atomic op on a 1-pipe machine can
	// never place (each segment needs its own pipe); the oracle must
	// refuse up front instead of scanning forever.
	m := &machine.Machine{
		Name:          "OnePipe",
		UnitCounts:    map[machine.UnitKind]int{"U": 1},
		DispatchWidth: 1,
		Table: map[ir.Op][]machine.AtomicOp{
			ir.OpIAdd: {{Name: "wide", Segments: []machine.Segment{
				{Unit: "U", Noncov: 1},
				{Unit: "U", Start: 2, Noncov: 1},
			}}},
		},
	}
	b := &ir.Block{}
	b.Append(ir.NewInstr(ir.OpIAdd, 0))
	if _, err := Pack(m, b, Options{}); err == nil {
		t.Error("expansion needing 2 pipes of a 1-pipe kind accepted")
	}
}
