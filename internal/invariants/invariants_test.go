package invariants

import (
	"testing"
)

// The gating corpus: a fixed-seed run of the full suite must be
// violation-free. cmd/fuzzcheck runs the same seeds in CI; this copy
// keeps `go test ./...` self-contained.
func TestFixedCorpusClean(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	s := Run(n, 1, Config{})
	for _, v := range s.Violations {
		t.Errorf("%s", v)
	}
	if s.Proven == 0 {
		t.Error("oracle proved no sample optimal; budget or caps are wrong")
	}
}

// The approximation-quality bound of the differential suite: on every
// oracle-proven sample, tetris.Estimate stays within a pinned factor
// of the true optimum.
func TestApproxWithinPinnedRatio(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 40
	}
	var stats BlockStats
	for i := 0; i < n; i++ {
		_, st := CheckBlock(int64(i), Config{})
		stats.merge(st)
	}
	if stats.MaxRatio > MaxApproxExactRatio {
		t.Errorf("approx/exact ratio %.3f exceeds the pinned bound %.2f", stats.MaxRatio, MaxApproxExactRatio)
	}
	if stats.MaxRatio < 1 {
		t.Errorf("max ratio %.3f < 1: no sample measured, or the oracle beat itself", stats.MaxRatio)
	}
}

// Per-kind spot checks so a broken invariant fails with a focused
// test name, not just through the corpus driver.
func TestCheckSpecSeeds(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for _, v := range CheckSpec(seed) {
			t.Errorf("%s", v)
		}
	}
}

func TestCheckProgramSeeds(t *testing.T) {
	n := int64(8)
	if testing.Short() {
		n = 2
	}
	for seed := int64(0); seed < n; seed++ {
		for _, v := range CheckProgram(seed) {
			t.Errorf("%s", v)
		}
	}
}

func TestCheckMemorySeeds(t *testing.T) {
	n := int64(50)
	if testing.Short() {
		n = 10
	}
	for seed := int64(0); seed < n; seed++ {
		for _, v := range CheckMemory(seed) {
			t.Errorf("%s", v)
		}
	}
}
