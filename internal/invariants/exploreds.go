package invariants

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/explore"
	"perfpredict/internal/progen"
)

// CheckExplore runs the design-space-exploration invariant suite for
// one seed: a generated machine template is expanded, swept over
// generated kernels, and the resulting frontier is audited against
// the dominance definition.
//
//   - expand-valid: every cell of the expanded lattice passes
//     Spec.Validate (Expand promises this; asserted independently).
//   - expand-deterministic: two expansions of the same template are
//     identical, cell for cell.
//   - expand-duplicate-free: every cell has a distinct machine content
//     fingerprint.
//   - explore-deterministic: Workers=1 and Workers=4 sweeps (the
//     latter on a warm shared segment cache) marshal byte-identically.
//   - front-nondominated: no front member dominates another.
//   - pruned-witnessed: every pruned config's recorded witness is on
//     the front and actually dominates it under explore.Dominates —
//     dominance on the measured (budget, cost) vector only, which is
//     exactly why pruning survives Graham's anomaly: a structurally
//     bigger machine that schedules slower is simply not dominant.
//   - frontier-partition: front and pruned together are the whole
//     lattice, each index exactly once.
//   - best-brute-force: Result.Best equals an independent linear scan
//     over all cells.
func CheckExplore(seed int64) []Violation {
	var vs []Violation
	fail := func(inv, format string, a ...any) {
		vs = append(vs, Violation{Invariant: inv, Seed: seed, Detail: fmt.Sprintf(format, a...)})
	}
	r := progen.NewRand(seed)
	tpl := progen.GenTemplate(r, progen.TemplateConfig{})
	if err := tpl.Validate(); err != nil {
		fail("gen-template-valid", "generated template rejected: %v", err)
		return vs
	}

	exp1, err := tpl.Expand()
	if err != nil {
		fail("expand-valid", "Expand failed on a valid template: %v", err)
		return vs
	}
	fps := make(map[string]string, len(exp1))
	for i, e := range exp1 {
		if err := e.Spec.Validate(); err != nil {
			fail("expand-valid", "cell %d (%s) invalid: %v", i, e.Spec.Name, err)
		}
		m, err := e.Spec.Machine()
		if err != nil {
			fail("expand-valid", "cell %d (%s) failed to build: %v", i, e.Spec.Name, err)
			continue
		}
		fp := m.Fingerprint().String()
		if prev, dup := fps[fp]; dup {
			fail("expand-duplicate-free", "cells %s and %s share fingerprint %s", prev, e.Spec.Name, fp)
		}
		fps[fp] = e.Spec.Name
	}
	exp2, err := tpl.Expand()
	if err != nil || len(exp1) != len(exp2) {
		fail("expand-deterministic", "re-expansion: %d cells vs %d (err %v)", len(exp1), len(exp2), err)
	} else {
		for i := range exp1 {
			e1, err1 := exp1[i].Spec.Encode()
			e2, err2 := exp2[i].Spec.Encode()
			if err1 != nil || err2 != nil || !bytes.Equal(e1, e2) {
				fail("expand-deterministic", "cell %d differs across expansions (errs %v, %v)", i, err1, err2)
				break
			}
		}
	}

	kernels := []explore.Kernel{
		{Name: "k0", Source: progen.GenProgram(r, progen.ProgramConfig{AllowIf: true})},
		{Name: "k1", Source: progen.GenProgram(r, progen.ProgramConfig{})},
	}
	// Half the seeds sweep toward a cost target (picked blind — it may
	// be unmeetable, which must yield Best == nil, not an error).
	var target float64
	if r.Intn(2) == 0 {
		target = float64(100 + r.Intn(99900))
	}
	res, err := explore.Run(context.Background(), tpl, kernels,
		explore.Options{Workers: 1, Target: target})
	if err != nil {
		fail("explore-total", "sweep failed on valid inputs: %v", err)
		return vs
	}
	seg := aggregate.NewSegCache()
	for pass := 0; pass < 2; pass++ { // cold then warm shared cache
		resN, err := explore.Run(context.Background(), tpl, kernels,
			explore.Options{Workers: 4, Target: target, SegCache: seg})
		if err != nil {
			fail("explore-deterministic", "workers=4 pass %d failed: %v", pass, err)
			return vs
		}
		b1, err1 := json.Marshal(res)
		bN, errN := json.Marshal(resN)
		if err1 != nil || errN != nil || !bytes.Equal(b1, bN) {
			fail("explore-deterministic",
				"workers=1 and workers=4 (pass %d) differ (errs %v, %v)\nw1: %s\nwN: %s",
				pass, err1, errN, b1, bN)
			return vs
		}
	}

	vs = append(vs, auditFrontier(seed, res, len(exp1), target)...)
	return vs
}

// auditFrontier checks a sweep result against the dominance
// definition, using only what the result itself carries.
func auditFrontier(seed int64, res *explore.Result, lattice int, target float64) []Violation {
	var vs []Violation
	fail := func(inv, format string, a ...any) {
		vs = append(vs, Violation{Invariant: inv, Seed: seed, Detail: fmt.Sprintf(format, a...)})
	}

	for i := range res.Front {
		for j := range res.Front {
			if i != j && explore.Dominates(&res.Front[i], &res.Front[j]) {
				fail("front-nondominated", "front member %s dominates front member %s",
					res.Front[i].Name, res.Front[j].Name)
			}
		}
	}

	frontByIndex := map[int]*explore.Cell{}
	for i := range res.Front {
		frontByIndex[res.Front[i].Index] = &res.Front[i]
	}
	for _, p := range res.Pruned {
		w, ok := frontByIndex[p.DominatedBy]
		if !ok {
			fail("pruned-witnessed", "%s: witness index %d is not on the front", p.Name, p.DominatedBy)
			continue
		}
		shadow := explore.Cell{Budget: p.Budget, Costs: p.Costs}
		if !explore.Dominates(w, &shadow) {
			fail("pruned-witnessed", "%s: recorded witness %s does not dominate it", p.Name, w.Name)
		}
	}

	seen := map[int]bool{}
	for i := range res.Front {
		seen[res.Front[i].Index] = true
	}
	for _, p := range res.Pruned {
		if seen[p.Index] {
			fail("frontier-partition", "index %d appears twice", p.Index)
		}
		seen[p.Index] = true
	}
	if res.Cells != lattice || len(seen) != lattice {
		fail("frontier-partition", "lattice %d cells, result covers %d (Cells=%d)",
			lattice, len(seen), res.Cells)
	}

	// Brute-force Best from the full (front ∪ pruned) cell set.
	type lite struct {
		index  int
		budget float64
		total  float64
	}
	all := make([]lite, 0, lattice)
	for _, c := range res.Front {
		all = append(all, lite{c.Index, c.Budget, c.Total})
	}
	for _, p := range res.Pruned {
		all = append(all, lite{p.Index, p.Budget, p.Total})
	}
	var want *lite
	for i := range all {
		c := &all[i]
		switch {
		case target > 0:
			if c.total > target {
				continue
			}
			if want == nil || c.budget < want.budget ||
				(c.budget == want.budget && c.total < want.total) ||
				(c.budget == want.budget && c.total == want.total && c.index < want.index) {
				want = c
			}
		default:
			if want == nil || c.total < want.total ||
				(c.total == want.total && c.budget < want.budget) ||
				(c.total == want.total && c.budget == want.budget && c.index < want.index) {
				want = c
			}
		}
	}
	switch {
	case want == nil && res.Best != nil:
		fail("best-brute-force", "no cell meets target %.0f but Best is %s", target, res.Best.Name)
	case want != nil && res.Best == nil:
		fail("best-brute-force", "cell %d meets target %.0f but Best is nil", want.index, target)
	case want != nil && res.Best.Index != want.index:
		fail("best-brute-force", "Best is cell %d, brute force says %d", res.Best.Index, want.index)
	}
	return vs
}
