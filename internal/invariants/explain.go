package invariants

// Explain-mode invariants. The diagnosis side of the estimator
// (tetris.EstimateExplained, explain.Program, perfpredict.Explain)
// must be provably inert — explaining a schedule or a program never
// changes what the plain estimators return — and every quantity it
// reports must be consistent with the schedule it describes:
//
//   - explain-inert: EstimateExplained's embedded Result equals
//     Estimate's, and a plain Estimate issued *after* the explained
//     one (and after the what-if) is still identical — the pooled
//     recorder leaves no residue in the shared scratch.
//   - explain-utilization: every per-pipe and per-kind utilization is
//     in [0, 1], each kind's busy count is the sum of its pipes', and
//     the bottleneck is the kind with the maximum utilization
//     (lexicographic tie-break).
//   - explain-path: the critical path is nonempty whenever the block
//     costs anything, runs in strictly increasing instruction order
//     (dependences and blockers only point backward), starts at an
//     unconstrained step, carries only known edge kinds, agrees with
//     the schedule's placement arrays, and spans PathCycles =
//     head finish − first occupied slot ≤ the makespan.
//   - explain-dep-height: the infinite-resource dependence height
//     lower-bounds the end of the greedy schedule and — on blocks the
//     oracle proved optimal — the end of the exact optimum too.
//   - explain-what-if: the one-more-pipe experiment names the
//     bottleneck kind, one more pipe than the base machine, and a
//     speedup that is exactly baseline/what-if cost. Deliberately NOT
//     asserted: what-if cost ≤ baseline. Greedy scheduling is not
//     monotone in resources (Graham's anomaly) and the model reports
//     a slowdown faithfully when one occurs.
//   - explain-inert-program / explain-cycles-consistent: program-level
//     Explain leaves Predict byte-identical, and its headline cycles
//     are the prediction evaluated at explain's default point
//     (probability → 0.5, every other unknown → 100).

import (
	"fmt"
	"math"
	"reflect"

	perfpredict "perfpredict"
	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
	"perfpredict/internal/oracle"
	"perfpredict/internal/progen"
	"perfpredict/internal/tetris"
)

// explainDefaultUnknown mirrors internal/explain's default evaluation
// point for non-probability unknowns.
const explainDefaultUnknown = 100

// checkExplainBlock runs the block-level explain suite on one sample.
// approx is the plain Estimate for the same inputs; exact carries the
// oracle's verdict when exactOK.
func checkExplainBlock(m *machine.Machine, b *ir.Block, topt tetris.Options,
	approx tetris.Result, exact oracle.Result, exactOK bool,
	fail func(inv, format string, a ...any)) {

	mayAlias := topt.MayAlias
	ex, err := tetris.EstimateExplained(m, b, topt)
	if err != nil {
		fail("explain-total", "mayAlias=%v: EstimateExplained failed on a valid input: %v", mayAlias, err)
		return
	}

	// explain-inert: the recorder only observes commits.
	if !reflect.DeepEqual(ex.Result, approx) {
		fail("explain-inert", "mayAlias=%v: explained result %+v != plain %+v",
			mayAlias, ex.Result, approx)
	}

	// explain-utilization.
	kindBusy := map[machine.UnitKind]int{}
	for _, p := range ex.Pipes {
		if p.Utilization < 0 || p.Utilization > 1 {
			fail("explain-utilization", "mayAlias=%v: pipe %s utilization %v outside [0,1]",
				mayAlias, p.Pipe, p.Utilization)
		}
		kindBusy[p.Kind] += p.Busy
	}
	for _, k := range ex.Kinds {
		if k.Utilization < 0 || k.Utilization > 1 {
			fail("explain-utilization", "mayAlias=%v: kind %s utilization %v outside [0,1]",
				mayAlias, k.Kind, k.Utilization)
		}
		if k.Busy != kindBusy[k.Kind] {
			fail("explain-utilization", "mayAlias=%v: kind %s busy %d != sum of its pipes %d",
				mayAlias, k.Kind, k.Busy, kindBusy[k.Kind])
		}
		switch {
		case k.Utilization > ex.BottleneckUtil+1e-12:
			fail("explain-utilization", "mayAlias=%v: kind %s at %v beats bottleneck %s at %v",
				mayAlias, k.Kind, k.Utilization, ex.Bottleneck, ex.BottleneckUtil)
		case k.Utilization == ex.BottleneckUtil && k.Kind < ex.Bottleneck:
			fail("explain-utilization", "mayAlias=%v: tie at %v broke to %s, not the smaller %s",
				mayAlias, k.Utilization, ex.Bottleneck, k.Kind)
		case k.Kind == ex.Bottleneck && k.Utilization != ex.BottleneckUtil:
			fail("explain-utilization", "mayAlias=%v: bottleneck %s reports %v but its kind row says %v",
				mayAlias, ex.Bottleneck, ex.BottleneckUtil, k.Utilization)
		}
	}
	if len(ex.Kinds) == 0 && ex.Bottleneck != "" {
		fail("explain-utilization", "mayAlias=%v: bottleneck %q with no unit kinds", mayAlias, ex.Bottleneck)
	}
	if ex.SaturatedAt != -1 && (ex.SaturatedAt < approx.Start || ex.SaturatedAt >= approx.End) {
		fail("explain-utilization", "mayAlias=%v: saturation slot %d outside schedule [%d,%d)",
			mayAlias, ex.SaturatedAt, approx.Start, approx.End)
	}

	// explain-path.
	n := len(b.Instrs)
	if len(ex.OpPipe) != n || len(ex.Finish) != n {
		fail("explain-path", "mayAlias=%v: per-op arrays sized %d/%d for %d instructions",
			mayAlias, len(ex.OpPipe), len(ex.Finish), n)
		return
	}
	for i, p := range ex.OpPipe {
		if p < -1 || p >= len(ex.Pipes) {
			fail("explain-path", "mayAlias=%v: op %d placed on pipe index %d of %d",
				mayAlias, i, p, len(ex.Pipes))
		}
	}
	if approx.Cost > 0 && len(ex.Path) == 0 {
		fail("explain-path", "mayAlias=%v: cost %d but empty critical path", mayAlias, approx.Cost)
	}
	if ex.PathCycles < 0 || ex.PathCycles > approx.Cost {
		fail("explain-path", "mayAlias=%v: path spans %d cycles of a %d-cycle schedule",
			mayAlias, ex.PathCycles, approx.Cost)
	}
	for i, s := range ex.Path {
		if s.Instr < 0 || s.Instr >= n {
			fail("explain-path", "mayAlias=%v: step %d names instruction %d of %d", mayAlias, i, s.Instr, n)
			continue
		}
		if s.Start != approx.PlaceTime[s.Instr] || s.Finish != ex.Finish[s.Instr] {
			fail("explain-path", "mayAlias=%v: step %d (#%d) at %d..%d disagrees with placement %d..%d",
				mayAlias, i, s.Instr, s.Start, s.Finish,
				approx.PlaceTime[s.Instr], ex.Finish[s.Instr])
		}
		if i == 0 {
			if s.Edge != "" {
				fail("explain-path", "mayAlias=%v: earliest step claims a %q constraint", mayAlias, s.Edge)
			}
			continue
		}
		if s.Instr <= ex.Path[i-1].Instr {
			fail("explain-path", "mayAlias=%v: step %d instruction #%d does not follow #%d",
				mayAlias, i, s.Instr, ex.Path[i-1].Instr)
		}
		switch s.Edge {
		case tetris.EdgeDep, tetris.EdgeDispatch:
		case tetris.EdgeResource:
			if s.Unit == "" {
				fail("explain-path", "mayAlias=%v: resource step %d names no unit", mayAlias, i)
			}
		default:
			fail("explain-path", "mayAlias=%v: step %d has unknown edge %q", mayAlias, i, s.Edge)
		}
	}
	if len(ex.Path) > 0 {
		head := ex.Path[len(ex.Path)-1]
		if want := head.Finish - approx.Start; want > 0 && ex.PathCycles != want {
			fail("explain-path", "mayAlias=%v: path cycles %d != head finish %d - start %d",
				mayAlias, ex.PathCycles, head.Finish, approx.Start)
		}
	}

	// explain-dep-height.
	if ex.DepHeight > approx.End {
		fail("explain-dep-height", "mayAlias=%v: dependence height %d exceeds greedy end %d",
			mayAlias, ex.DepHeight, approx.End)
	}
	if exactOK && exact.Proven && ex.DepHeight > exact.End {
		fail("explain-dep-height", "mayAlias=%v: dependence height %d exceeds proven-optimal end %d",
			mayAlias, ex.DepHeight, exact.End)
	}

	// explain-what-if. Monotonicity (what-if ≤ baseline) is NOT an
	// invariant — see the package comment above.
	if err := ex.ComputeWhatIf(m, b, topt); err != nil {
		fail("explain-what-if", "mayAlias=%v: ComputeWhatIf: %v", mayAlias, err)
	} else if ex.Bottleneck != "" {
		w := ex.WhatIf
		if w == nil {
			fail("explain-what-if", "mayAlias=%v: bottleneck %s but no experiment", mayAlias, ex.Bottleneck)
		} else {
			if w.Unit != ex.Bottleneck {
				fail("explain-what-if", "mayAlias=%v: experiment on %s, bottleneck is %s",
					mayAlias, w.Unit, ex.Bottleneck)
			}
			if w.Pipes != m.UnitCounts[ex.Bottleneck]+1 {
				fail("explain-what-if", "mayAlias=%v: %d pipes after adding one to %d",
					mayAlias, w.Pipes, m.UnitCounts[ex.Bottleneck])
			}
			if w.Cost > 0 {
				if want := float64(approx.Cost) / float64(w.Cost); math.Abs(w.Speedup-want) > 1e-12 {
					fail("explain-what-if", "mayAlias=%v: speedup %v != %d/%d", mayAlias, w.Speedup, approx.Cost, w.Cost)
				}
			} else if w.Speedup != 1 {
				fail("explain-what-if", "mayAlias=%v: zero-cost what-if with speedup %v", mayAlias, w.Speedup)
			}
		}
	}

	// explain-inert, second half: after the whole diagnosis (recorder
	// pooling, what-if on a derived machine) a plain Estimate still
	// reproduces the original result exactly.
	if after, err := tetris.Estimate(m, b, topt); err != nil || !reflect.DeepEqual(after, approx) {
		fail("explain-inert", "mayAlias=%v: Estimate after diagnosis differs: %+v vs %+v (err %v)",
			mayAlias, after, approx, err)
	}
}

// CheckExplain runs the program-level explain suite for one seed: on a
// generated F-lite program, Explain must succeed, report cycles
// consistent with Predict at explain's default evaluation point, and
// leave a subsequent Predict byte-identical.
func CheckExplain(seed int64) []Violation {
	var vs []Violation
	fail := func(inv, format string, a ...any) {
		vs = append(vs, Violation{Invariant: inv, Seed: seed, Detail: fmt.Sprintf(format, a...)})
	}
	r := progen.NewRand(seed)
	src := progen.GenProgram(r, progen.ProgramConfig{AllowIf: true, AllowSubroutine: true})

	var target *perfpredict.Target
	if r.Intn(2) == 0 {
		m, err := progen.GenSpec(r, progen.SpecConfig{}).Machine()
		if err != nil {
			fail("gen-spec-valid", "generated spec rejected: %v", err)
			return vs
		}
		target = m
	} else {
		names := perfpredict.TargetNames()
		t, err := perfpredict.LoadTarget(names[r.Intn(len(names))])
		if err != nil {
			fail("load-target", "builtin target failed to load: %v", err)
			return vs
		}
		target = t
	}

	before, err := perfpredict.Predict(src, target)
	if err != nil {
		fail("predict-total", "Predict failed on generated program: %v\n%s", err, src)
		return vs
	}
	rep, err := perfpredict.Explain(src, target)
	if err != nil {
		fail("explain-program-total", "Explain failed where Predict succeeded: %v\n%s", err, src)
		return vs
	}

	// explain-inert-program: diagnosing must not perturb prediction.
	after, err := perfpredict.Predict(src, target)
	if err != nil {
		fail("explain-inert-program", "Predict failed after Explain: %v", err)
	} else if before.Cost.String() != after.Cost.String() ||
		before.Memory.String() != after.Memory.String() ||
		before.OneTime.String() != after.OneTime.String() ||
		!reflect.DeepEqual(before.Unknowns, after.Unknowns) {
		fail("explain-inert-program", "Predict changed across Explain: cost %q -> %q",
			before.Cost.String(), after.Cost.String())
	}

	// explain-cycles-consistent: the headline numbers are Predict's own
	// expressions evaluated at the default point.
	point := map[string]float64{}
	for _, u := range before.Unknowns {
		if u.Kind == "probability" {
			point[u.Name] = 0.5
		} else {
			point[u.Name] = explainDefaultUnknown
		}
	}
	if v, err := before.EvalAt(point); err != nil {
		fail("explain-cycles-consistent", "EvalAt default point: %v", err)
	} else if math.Abs(v-rep.Cycles) > 1e-6*math.Max(1, math.Abs(v)) {
		fail("explain-cycles-consistent", "report %v cycles, prediction evaluates to %v", rep.Cycles, v)
	}
	if mv, err := before.EvalMemoryAt(point); err == nil &&
		math.Abs(mv-rep.MemoryCycles) > 1e-6*math.Max(1, math.Abs(mv)) {
		fail("explain-cycles-consistent", "report %v memory cycles, prediction evaluates to %v",
			rep.MemoryCycles, mv)
	}

	// Report well-formedness: weights are a distribution over nests,
	// every utilization is a fraction.
	if len(rep.Nests) > 0 {
		sum := 0.0
		for _, nst := range rep.Nests {
			sum += nst.Weight
			if nst.BottleneckUtil < 0 || nst.BottleneckUtil > 1 {
				fail("explain-report-sane", "nest %s bottleneck utilization %v", nst.Label, nst.BottleneckUtil)
			}
			for _, k := range nst.Kinds {
				if k.Utilization < 0 || k.Utilization > 1 {
					fail("explain-report-sane", "nest %s kind %s utilization %v", nst.Label, k.Kind, k.Utilization)
				}
			}
			if nst.PathCycles > nst.BlockCost {
				fail("explain-report-sane", "nest %s path %d cycles of a %d-cycle block",
					nst.Label, nst.PathCycles, nst.BlockCost)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			fail("explain-report-sane", "nest weights sum to %v", sum)
		}
	}
	if rep.BottleneckUtil < 0 || rep.BottleneckUtil > 1 {
		fail("explain-report-sane", "program bottleneck utilization %v", rep.BottleneckUtil)
	}
	return vs
}
