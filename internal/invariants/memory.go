package invariants

import (
	"fmt"
	"math"
	"math/rand"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/machine"
	"perfpredict/internal/progen"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
)

// genMemory draws a random valid memory hierarchy. It takes the
// caller's rand but is only ever fed a rand private to CheckMemory —
// progen.GenSpec's draw sequence (which gates the pinned approx/exact
// corpus) must stay untouched by the memory suite.
func genMemory(r *rand.Rand) *machine.MemoryHierarchy {
	assocs := []int{1, 2, 4}
	line := int64(8) << r.Intn(5)        // 8..128 bytes
	lines := int64(1) << (r.Intn(6) + 3) // 8..256 lines per cache
	h := &machine.MemoryHierarchy{
		ElemBytes: 8,
		Levels: []machine.CacheLevel{{
			Name:        "L1",
			SizeBytes:   line * lines,
			LineBytes:   line,
			Assoc:       assocs[r.Intn(len(assocs))],
			MissPenalty: int64(r.Intn(60)),
		}},
	}
	if r.Intn(2) == 0 {
		h.TLB = &machine.TLBGeometry{
			PageBytes:   4096,
			Entries:     int64(16) << r.Intn(4),
			Assoc:       assocs[r.Intn(len(assocs))],
			MissPenalty: int64(r.Intn(120)),
		}
	}
	return h
}

// CheckMemory runs the memory-model invariant suite for one seed: a
// generated loop-nest program priced on the reference machine under a
// generated hierarchy and under monotone perturbations of it.
//
//   - memory-monotone-size: growing a cache level never raises the
//     predicted cost at a positive evaluation point.
//   - memory-monotone-penalty: shrinking miss penalties never raises
//     the predicted cost.
//   - memory-zero-identical: a hierarchy whose penalties are all zero
//     prices byte-identically to no hierarchy at all.
func CheckMemory(seed int64) []Violation {
	var vs []Violation
	fail := func(inv, format string, a ...any) {
		vs = append(vs, Violation{Invariant: inv, Seed: seed, Detail: fmt.Sprintf(format, a...)})
	}
	r := progen.NewRand(seed)
	src := progen.GenProgram(r, progen.ProgramConfig{})
	prog, err := source.Parse(src)
	if err != nil {
		fail("memory-gen-program", "parse: %v\n%s", err, src)
		return vs
	}
	tbl, err := sem.Analyze(prog)
	if err != nil {
		fail("memory-gen-program", "analyze: %v\n%s", err, src)
		return vs
	}
	h := genMemory(r)

	opt := aggregate.DefaultOptions()
	price := func(mem *machine.MemoryHierarchy) (aggregate.Result, error) {
		m := machine.ReferencePOWER1()
		m.Memory = mem
		if err := m.Validate(); err != nil {
			return aggregate.Result{}, fmt.Errorf("hierarchy rejected: %w", err)
		}
		return aggregate.New(tbl, m, opt).Program(prog)
	}
	eval := func(res aggregate.Result) float64 {
		assign := map[symexpr.Var]float64{}
		for _, v := range res.Cost.Vars() {
			assign[v] = 64
		}
		c, err := res.Cost.Eval(assign)
		if err != nil {
			fail("memory-eval", "cost eval: %v", err)
			return math.NaN()
		}
		return c
	}

	resH, err := price(h)
	if err != nil {
		fail("memory-price", "%v", err)
		return vs
	}
	costH := eval(resH)

	// memory-monotone-size: double every cache level.
	big := h.Clone()
	for i := range big.Levels {
		big.Levels[i].SizeBytes *= 2
	}
	if resBig, err := price(big); err != nil {
		fail("memory-monotone-size", "%v", err)
	} else if c := eval(resBig); c > costH+1e-9 {
		fail("memory-monotone-size", "doubling cache sizes raised cost %.3f -> %.3f\n%s", costH, c, src)
	}

	// memory-monotone-penalty: halve every penalty.
	cheap := h.Clone()
	for i := range cheap.Levels {
		cheap.Levels[i].MissPenalty /= 2
	}
	if cheap.TLB != nil {
		cheap.TLB.MissPenalty /= 2
	}
	if resCheap, err := price(cheap); err != nil {
		fail("memory-monotone-penalty", "%v", err)
	} else if c := eval(resCheap); c > costH+1e-9 {
		fail("memory-monotone-penalty", "halving penalties raised cost %.3f -> %.3f\n%s", costH, c, src)
	}

	// memory-zero-identical: all penalties zero ≡ no hierarchy.
	zero := h.Clone()
	for i := range zero.Levels {
		zero.Levels[i].MissPenalty = 0
	}
	if zero.TLB != nil {
		zero.TLB.MissPenalty = 0
	}
	resZero, err := price(zero)
	if err != nil {
		fail("memory-zero-identical", "%v", err)
		return vs
	}
	resNil, err := price(nil)
	if err != nil {
		fail("memory-zero-identical", "%v", err)
		return vs
	}
	sig := func(res aggregate.Result) string {
		return fmt.Sprintf("cost=%s|onetime=%s|mem=%s", res.Cost, res.OneTime, res.Memory)
	}
	if sig(resZero) != sig(resNil) {
		fail("memory-zero-identical", "zero-penalty hierarchy diverged from no hierarchy:\n zero %s\n  nil %s\n%s",
			sig(resZero), sig(resNil), src)
	}
	return vs
}
