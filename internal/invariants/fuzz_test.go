package invariants

import (
	"testing"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
	"perfpredict/internal/progen"
	"perfpredict/internal/tetris"
)

// FuzzBlockInvariants drives the whole block suite from a fuzzed
// seed: the seed picks the machine, the block, and the metamorphic
// twins, so the native fuzzer explores generator space while every
// failure stays reproducible from the seed alone.
func FuzzBlockInvariants(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		vs, _ := CheckBlock(seed, Config{NodeBudget: 1 << 15})
		for _, v := range vs {
			t.Errorf("%s", v)
		}
		for _, v := range CheckSpec(seed) {
			t.Errorf("%s", v)
		}
	})
}

// FuzzSpecJSON feeds raw bytes to the spec loader: anything that
// parses and validates must build a machine, price a block without
// error, and round-trip through the canonical encoding.
func FuzzSpecJSON(f *testing.F) {
	f.Add([]byte(`{"name":"x"}`))
	f.Add([]byte(`not json`))
	for seed := int64(0); seed < 4; seed++ {
		s := progen.GenSpec(progen.NewRand(seed), progen.SpecConfig{})
		if data, err := s.Encode(); err == nil {
			f.Add(data)
		}
	}
	probe := &ir.Block{Label: "probe"}
	probe.Append(ir.Instr{Op: ir.OpLoadImm, Dst: 0, Imm: 1})
	probe.Append(ir.Instr{Op: ir.OpFLoad, Dst: 1, Addr: "a(i)", Base: "a"})
	probe.Append(ir.NewInstr(ir.OpFAdd, 2, 1, 1))
	probe.Append(ir.Instr{Op: ir.OpFStore, Dst: ir.NoReg, Srcs: []ir.Reg{2}, Addr: "a(i)", Base: "a"})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := machine.ParseSpec(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			return
		}
		m, err := s.Machine()
		if err != nil {
			t.Fatalf("validated spec failed to build: %v", err)
		}
		if _, err := tetris.Estimate(m, probe, tetris.Options{}); err != nil {
			t.Fatalf("validated machine failed to price a block: %v", err)
		}
		enc1, err := s.Encode()
		if err != nil {
			t.Fatalf("validated spec failed to encode: %v", err)
		}
		back, err := machine.ParseSpec(enc1)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v", err)
		}
		enc2, err := back.Encode()
		if err != nil || string(enc1) != string(enc2) {
			t.Fatalf("Encode∘ParseSpec is not the identity (err %v)", err)
		}
	})
}

// FuzzSpecTemplate feeds raw bytes to the machine-template loader:
// anything that parses and validates must size and expand, every
// expanded cell must be a valid distinct machine, and the template
// must round-trip through its canonical encoding with a stable
// fingerprint.
func FuzzSpecTemplate(f *testing.F) {
	f.Add([]byte(`{"base_machine":"POWER1","dispatch":[4,5]}`))
	f.Add([]byte(`{"base_machine":"POWER1","pipes":{"FPU":[1,2]}}`))
	f.Add([]byte(`{"base_machine":"POWER1","dispatch":[5,4]}`))
	f.Add([]byte(`not json`))
	for seed := int64(0); seed < 4; seed++ {
		tpl := progen.GenTemplate(progen.NewRand(seed), progen.TemplateConfig{})
		if data, err := tpl.Encode(); err == nil {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tpl, err := machine.ParseTemplate(data)
		if err != nil {
			return
		}
		if err := tpl.Validate(); err != nil {
			return
		}
		size, err := tpl.Size()
		if err != nil {
			t.Fatalf("validated template failed to size: %v", err)
		}
		if size > 1<<12 {
			// Expansion cost is linear in cells; bound the fuzz iteration.
			return
		}
		cells, err := tpl.Expand()
		if err != nil {
			t.Fatalf("validated template failed to expand: %v", err)
		}
		if len(cells) != size {
			t.Fatalf("Size says %d cells, Expand produced %d", size, len(cells))
		}
		seen := map[string]bool{}
		for i, c := range cells {
			if err := c.Spec.Validate(); err != nil {
				t.Fatalf("cell %d (%s) invalid: %v", i, c.Spec.Name, err)
			}
			m, err := c.Spec.Machine()
			if err != nil {
				t.Fatalf("cell %d (%s) failed to build: %v", i, c.Spec.Name, err)
			}
			fp := m.Fingerprint().String()
			if seen[fp] {
				t.Fatalf("cell %d (%s) duplicates an earlier fingerprint", i, c.Spec.Name)
			}
			seen[fp] = true
		}
		enc1, err := tpl.Encode()
		if err != nil {
			t.Fatalf("validated template failed to encode: %v", err)
		}
		back, err := machine.ParseTemplate(enc1)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v", err)
		}
		enc2, err := back.Encode()
		if err != nil || string(enc1) != string(enc2) {
			t.Fatalf("Encode∘ParseTemplate is not the identity (err %v)", err)
		}
		fp1, err1 := tpl.Fingerprint()
		fp2, err2 := back.Fingerprint()
		if err1 != nil || err2 != nil || fp1 != fp2 {
			t.Fatalf("fingerprint unstable across round-trip (errs %v, %v)", err1, err2)
		}
	})
}
