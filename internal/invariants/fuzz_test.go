package invariants

import (
	"testing"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
	"perfpredict/internal/progen"
	"perfpredict/internal/tetris"
)

// FuzzBlockInvariants drives the whole block suite from a fuzzed
// seed: the seed picks the machine, the block, and the metamorphic
// twins, so the native fuzzer explores generator space while every
// failure stays reproducible from the seed alone.
func FuzzBlockInvariants(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		vs, _ := CheckBlock(seed, Config{NodeBudget: 1 << 15})
		for _, v := range vs {
			t.Errorf("%s", v)
		}
		for _, v := range CheckSpec(seed) {
			t.Errorf("%s", v)
		}
	})
}

// FuzzSpecJSON feeds raw bytes to the spec loader: anything that
// parses and validates must build a machine, price a block without
// error, and round-trip through the canonical encoding.
func FuzzSpecJSON(f *testing.F) {
	f.Add([]byte(`{"name":"x"}`))
	f.Add([]byte(`not json`))
	for seed := int64(0); seed < 4; seed++ {
		s := progen.GenSpec(progen.NewRand(seed), progen.SpecConfig{})
		if data, err := s.Encode(); err == nil {
			f.Add(data)
		}
	}
	probe := &ir.Block{Label: "probe"}
	probe.Append(ir.Instr{Op: ir.OpLoadImm, Dst: 0, Imm: 1})
	probe.Append(ir.Instr{Op: ir.OpFLoad, Dst: 1, Addr: "a(i)", Base: "a"})
	probe.Append(ir.NewInstr(ir.OpFAdd, 2, 1, 1))
	probe.Append(ir.Instr{Op: ir.OpFStore, Dst: ir.NoReg, Srcs: []ir.Reg{2}, Addr: "a(i)", Base: "a"})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := machine.ParseSpec(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			return
		}
		m, err := s.Machine()
		if err != nil {
			t.Fatalf("validated spec failed to build: %v", err)
		}
		if _, err := tetris.Estimate(m, probe, tetris.Options{}); err != nil {
			t.Fatalf("validated machine failed to price a block: %v", err)
		}
		enc1, err := s.Encode()
		if err != nil {
			t.Fatalf("validated spec failed to encode: %v", err)
		}
		back, err := machine.ParseSpec(enc1)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v", err)
		}
		enc2, err := back.Encode()
		if err != nil || string(enc1) != string(enc2) {
			t.Fatalf("Encode∘ParseSpec is not the identity (err %v)", err)
		}
	})
}
