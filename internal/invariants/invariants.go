// Package invariants is the metamorphic differential-fuzzing harness:
// it draws random-but-valid inputs from progen, runs the production
// estimators against the exact oracle and against transformed twins of
// the same input, and reports every broken invariant as a Violation
// carrying the seed that reproduces it.
//
// The invariant suite, by input kind:
//
// Blocks (CheckBlock):
//
//   - oracle-bound: tetris.Estimate's makespan is never below the
//     exact optimum (the greedy schedule is in the oracle's search
//     space, so this holds by construction — a violation means one of
//     the two placers diverged from the model).
//   - greedy-differential: oracle.GreedyInOrder, an independent
//     reimplementation of the placement rule, reproduces
//     tetris.Estimate exactly (cost, extent, per-op issue slots, and
//     cost-block shape).
//   - determinism: two calls to Estimate on the same input are
//     identical (guards the sync.Pool scratch reuse).
//   - commute-srcs: flipping the operands of commutative ops leaves
//     the estimate unchanged.
//   - rename-regs: bijective register renaming leaves the estimate
//     unchanged.
//   - sink-swap: swapping adjacent same-op, same-source, same-deps,
//     consumer-free instructions leaves the estimate unchanged.
//   - topo-perm: the exact optimum is invariant under any
//     dependence-respecting reordering of the block (only asserted
//     when both searches complete within budget).
//   - explain-inert / explain-utilization / explain-path /
//     explain-dep-height / explain-what-if: EstimateExplained's
//     diagnosis is inert and self-consistent (see explain.go for the
//     full list; one-more-pipe monotonicity is deliberately NOT
//     asserted — Graham's anomaly).
//
// Specs (CheckSpec):
//
//   - roundtrip-fixed-point: Encode ∘ ParseSpec is the identity on
//     canonical encodings.
//   - specof-fingerprint: Spec → Machine → SpecOf → Machine preserves
//     the content fingerprint and the estimates.
//   - mutation-caught: every deliberately broken spec from
//     progen.InvalidMutations is rejected by Validate.
//
// Programs (CheckProgram):
//
//   - batch-identical: PredictBatch with Workers=1, Workers=N, and a
//     shared warm cache all reproduce serial Predict byte-for-byte.
//   - incremental-identical: PriceIncremental over warm caches after
//     a random transformation equals a from-scratch re-pricing.
//   - result-cache-identical (CheckResultCache): the serving stack's
//     response bytes with the result cache disabled, cold, and warm
//     are identical on generated programs × generated inline specs.
//   - explain-inert-program / explain-cycles-consistent /
//     explain-report-sane (CheckExplain): program-level Explain
//     succeeds wherever Predict does, leaves Predict byte-identical,
//     and reports cycles that are Predict's own expressions evaluated
//     at explain's default point.
//
// Machine templates and design-space sweeps (CheckExplore):
//
//   - expand-valid / expand-deterministic / expand-duplicate-free:
//     template expansion yields a canonical lattice of valid,
//     fingerprint-distinct machines, identically every time.
//   - explore-deterministic: sweep results are byte-identical across
//     worker counts and cache warmth.
//   - front-nondominated / pruned-witnessed / frontier-partition /
//     best-brute-force: the Pareto front is audited against the
//     measured-dominance definition — never a structural "more
//     resources" ordering, which Graham's anomaly forbids.
//
// Memory hierarchies (CheckMemory):
//
//   - memory-monotone-size: growing a cache level never raises the
//     predicted cost.
//   - memory-monotone-penalty: shrinking miss penalties never raises
//     the predicted cost.
//   - memory-zero-identical: an all-zero-penalty hierarchy prices
//     byte-identically to no hierarchy at all.
package invariants

import (
	"fmt"
	"reflect"

	perfpredict "perfpredict"
	"perfpredict/internal/aggregate"
	"perfpredict/internal/machine"
	"perfpredict/internal/oracle"
	"perfpredict/internal/progen"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/tetris"
	"perfpredict/internal/xform"
)

// MaxApproxExactRatio pins how far the greedy placement may drift
// above the exact optimum on the gating corpus. Measured max over
// 5000 seeds is exactly 2.0; the pin leaves headroom for generator
// drift while still catching a systematically broken placer.
// cmd/fuzzcheck fails when a run exceeds it.
const MaxApproxExactRatio = 2.25

// Violation is one broken invariant, reproducible from Seed.
type Violation struct {
	Invariant string
	Seed      int64
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s (seed %d): %s", v.Invariant, v.Seed, v.Detail)
}

// Config tunes the per-seed checks.
type Config struct {
	// NodeBudget bounds the oracle search per block (default 1<<18).
	NodeBudget int
	// MaxOps caps the block size the oracle attempts (default 20).
	MaxOps int
}

func (c *Config) defaults() {
	if c.NodeBudget == 0 {
		c.NodeBudget = 1 << 18
	}
	if c.MaxOps == 0 {
		c.MaxOps = 20
	}
}

// BlockStats aggregates oracle outcomes across CheckBlock calls.
type BlockStats struct {
	// Proven counts samples where the oracle completed its search.
	Proven int
	// Truncated counts samples where the node budget ran out.
	Truncated int
	// MaxRatio is the largest approx/exact makespan ratio observed
	// over proven samples.
	MaxRatio float64
}

func (s *BlockStats) merge(o BlockStats) {
	s.Proven += o.Proven
	s.Truncated += o.Truncated
	if o.MaxRatio > s.MaxRatio {
		s.MaxRatio = o.MaxRatio
	}
}

// CheckBlock runs the straight-line-block invariant suite for one
// seed: a generated machine prices a generated block, compared against
// the exact oracle and against metamorphic twins.
func CheckBlock(seed int64, cfg Config) ([]Violation, BlockStats) {
	cfg.defaults()
	var vs []Violation
	var stats BlockStats
	fail := func(inv, format string, a ...any) {
		vs = append(vs, Violation{Invariant: inv, Seed: seed, Detail: fmt.Sprintf(format, a...)})
	}

	r := progen.NewRand(seed)
	spec := progen.GenSpec(r, progen.SpecConfig{})
	m, err := spec.Machine()
	if err != nil {
		fail("gen-spec-valid", "generated spec rejected: %v", err)
		return vs, stats
	}
	b := progen.GenBlock(r, progen.BlockConfig{AllowControl: true})

	for _, mayAlias := range []bool{false, true} {
		topt := tetris.Options{MayAlias: mayAlias}
		oopt := oracle.Options{MayAlias: mayAlias, NodeBudget: cfg.NodeBudget, MaxOps: cfg.MaxOps}
		approx, err := tetris.Estimate(m, b, topt)
		if err != nil {
			fail("estimate-total", "Estimate failed on a valid input: %v", err)
			continue
		}

		// determinism: pooled scratch must not leak across calls.
		again, err := tetris.Estimate(m, b, topt)
		if err != nil || !reflect.DeepEqual(approx, again) {
			fail("determinism", "mayAlias=%v: second Estimate differs: %+v vs %+v (err %v)",
				mayAlias, approx, again, err)
		}

		// greedy-differential: independent placer reimplementation.
		greedy, err := oracle.GreedyInOrder(m, b, oopt)
		if err != nil {
			fail("greedy-differential", "GreedyInOrder failed: %v", err)
		} else if greedy.Cost != approx.Cost || greedy.Start != approx.Start ||
			greedy.End != approx.End ||
			!reflect.DeepEqual(greedy.PlaceTime, approx.PlaceTime) ||
			!reflect.DeepEqual(greedy.Shape, approx.Shape) {
			fail("greedy-differential",
				"mayAlias=%v: greedy {cost %d [%d,%d] place %v} != tetris {cost %d [%d,%d] place %v}",
				mayAlias, greedy.Cost, greedy.Start, greedy.End, greedy.PlaceTime,
				approx.Cost, approx.Start, approx.End, approx.PlaceTime)
		}

		// oracle-bound (+ ratio bookkeeping).
		exact, err := oracle.Pack(m, b, oopt)
		exactOK := err == nil
		if err == nil {
			if exact.Proven {
				stats.Proven++
				if exact.Cost > 0 {
					if ratio := float64(approx.Cost) / float64(exact.Cost); ratio > stats.MaxRatio {
						stats.MaxRatio = ratio
					}
				}
			} else {
				stats.Truncated++
			}
			if approx.Cost < exact.Cost {
				fail("oracle-bound", "mayAlias=%v: approx %d < exact %d (proven=%v)",
					mayAlias, approx.Cost, exact.Cost, exact.Proven)
			}

			// topo-perm: the optimum ignores the presentation order.
			perm := progen.TopoShuffle(r, b, mayAlias)
			permExact, err := oracle.Pack(m, perm, oopt)
			if err != nil {
				fail("topo-perm", "oracle failed on permuted block: %v", err)
			} else if exact.Proven && permExact.Proven && exact.Cost != permExact.Cost {
				fail("topo-perm", "mayAlias=%v: exact cost %d became %d after topo shuffle",
					mayAlias, exact.Cost, permExact.Cost)
			}
		}

		// commute-srcs.
		if sw, err := tetris.Estimate(m, progen.SwapCommutativeSrcs(b), topt); err != nil {
			fail("commute-srcs", "Estimate failed after swap: %v", err)
		} else if !reflect.DeepEqual(approx, sw) {
			fail("commute-srcs", "mayAlias=%v: cost %d -> %d after commutative operand swap",
				mayAlias, approx.Cost, sw.Cost)
		}

		// rename-regs.
		if rn, err := tetris.Estimate(m, progen.RenameRegs(r, b), topt); err != nil {
			fail("rename-regs", "Estimate failed after rename: %v", err)
		} else if rn.Cost != approx.Cost || rn.Start != approx.Start || rn.End != approx.End ||
			!reflect.DeepEqual(rn.Shape, approx.Shape) {
			fail("rename-regs", "mayAlias=%v: cost %d -> %d after bijective renaming",
				mayAlias, approx.Cost, rn.Cost)
		}

		// sink-swap (when the block has an eligible pair).
		if swapped, ok := progen.SwapAdjacentSinks(b, mayAlias); ok {
			if ss, err := tetris.Estimate(m, swapped, topt); err != nil {
				fail("sink-swap", "Estimate failed after sink swap: %v", err)
			} else if ss.Cost != approx.Cost || ss.Start != approx.Start || ss.End != approx.End ||
				!reflect.DeepEqual(ss.Shape, approx.Shape) {
				fail("sink-swap", "mayAlias=%v: cost %d -> %d after adjacent sink swap",
					mayAlias, approx.Cost, ss.Cost)
			}
		}

		// explain suite: diagnosis must be inert and self-consistent
		// (see explain.go for the invariant list).
		checkExplainBlock(m, b, topt, approx, exact, exactOK, fail)
	}
	return vs, stats
}

// CheckSpec runs the machine-description invariant suite for one seed.
func CheckSpec(seed int64) []Violation {
	var vs []Violation
	fail := func(inv, format string, a ...any) {
		vs = append(vs, Violation{Invariant: inv, Seed: seed, Detail: fmt.Sprintf(format, a...)})
	}
	r := progen.NewRand(seed)
	spec := progen.GenSpec(r, progen.SpecConfig{})

	enc1, err := spec.Encode()
	if err != nil {
		fail("roundtrip-fixed-point", "Encode: %v", err)
		return vs
	}
	back, err := machine.ParseSpec(enc1)
	if err != nil {
		fail("roundtrip-fixed-point", "ParseSpec rejected own encoding: %v", err)
		return vs
	}
	enc2, err := back.Encode()
	if err != nil || string(enc1) != string(enc2) {
		fail("roundtrip-fixed-point", "Encode∘ParseSpec is not the identity (err %v)", err)
	}

	m, err := spec.Machine()
	if err != nil {
		fail("gen-spec-valid", "generated spec rejected: %v", err)
		return vs
	}
	m2, err := machine.SpecOf(m).Machine()
	if err != nil {
		fail("specof-fingerprint", "SpecOf(m).Machine(): %v", err)
	} else {
		if m.Fingerprint() != m2.Fingerprint() {
			fail("specof-fingerprint", "fingerprint changed across Spec→Machine→Spec→Machine")
		}
		b := progen.GenBlock(progen.NewRand(seed+1), progen.BlockConfig{})
		r1, err1 := tetris.Estimate(m, b, tetris.Options{})
		r2, err2 := tetris.Estimate(m2, b, tetris.Options{})
		if err1 != nil || err2 != nil || !reflect.DeepEqual(r1, r2) {
			fail("specof-fingerprint", "estimates differ across round-trip: %+v vs %+v (errs %v, %v)",
				r1, r2, err1, err2)
		}
	}

	for _, mut := range progen.InvalidMutations(spec) {
		if err := mut.Spec.Validate(); err == nil {
			fail("mutation-caught", "mutation %q slipped through Validate", mut.Name)
		}
	}
	return vs
}

// CheckProgram runs the whole-pipeline invariant suite for one seed:
// batch/caching/concurrency equivalences and the incremental
// re-pricing equivalence, on generated F-lite programs.
func CheckProgram(seed int64) []Violation {
	var vs []Violation
	fail := func(inv, format string, a ...any) {
		vs = append(vs, Violation{Invariant: inv, Seed: seed, Detail: fmt.Sprintf(format, a...)})
	}
	r := progen.NewRand(seed)
	srcs := make([]string, 3)
	for i := range srcs {
		srcs[i] = progen.GenProgram(r, progen.ProgramConfig{AllowIf: true, AllowSubroutine: true})
	}

	// Alternate between a generated target and the builtins.
	var target *perfpredict.Target
	if r.Intn(2) == 0 {
		m, err := progen.GenSpec(r, progen.SpecConfig{}).Machine()
		if err != nil {
			fail("gen-spec-valid", "generated spec rejected: %v", err)
			return vs
		}
		target = m
	} else {
		names := perfpredict.TargetNames()
		t, err := perfpredict.LoadTarget(names[r.Intn(len(names))])
		if err != nil {
			fail("load-target", "builtin target failed to load: %v", err)
			return vs
		}
		target = t
	}

	serial := make([]*perfpredict.Prediction, len(srcs))
	for i, src := range srcs {
		p, err := perfpredict.Predict(src, target)
		if err != nil {
			fail("predict-total", "Predict failed on generated program: %v\n%s", err, src)
			return vs
		}
		serial[i] = p
	}

	check := func(name string, opt perfpredict.BatchOptions) {
		preds, errs := perfpredict.PredictBatch(srcs, target, opt)
		for i := range srcs {
			if errs[i] != nil {
				fail("batch-identical", "%s: program %d failed: %v", name, i, errs[i])
				continue
			}
			if preds[i].Cost.String() != serial[i].Cost.String() ||
				preds[i].OneTime.String() != serial[i].OneTime.String() {
				fail("batch-identical", "%s: program %d cost %q != serial %q",
					name, i, preds[i].Cost.String(), serial[i].Cost.String())
			}
		}
	}
	check("workers=1", perfpredict.BatchOptions{Workers: 1})
	check("workers=4", perfpredict.BatchOptions{Workers: 4})
	warm := perfpredict.NewSegmentCache()
	check("shared-cache-cold", perfpredict.BatchOptions{Workers: 4, Cache: warm})
	check("shared-cache-warm", perfpredict.BatchOptions{Workers: 4, Cache: warm})

	vs = append(vs, checkIncremental(seed, r, srcs[0], target)...)
	return vs
}

// checkIncremental applies one random legal transformation to the
// program and asserts PriceIncremental over warm caches equals a
// from-scratch re-pricing of the transformed variant.
func checkIncremental(seed int64, r interface{ Intn(int) int }, src string, m *machine.Machine) []Violation {
	var vs []Violation
	fail := func(inv, format string, a ...any) {
		vs = append(vs, Violation{Invariant: inv, Seed: seed, Detail: fmt.Sprintf(format, a...)})
	}
	prog, err := source.Parse(src)
	if err != nil {
		fail("incremental-identical", "parse: %v", err)
		return vs
	}
	tbl, err := sem.Analyze(prog)
	if err != nil {
		fail("incremental-identical", "analyze: %v", err)
		return vs
	}
	moves := xform.Moves(prog, xform.SearchOptions{
		Machine: m, UnrollFactors: []int{2, 4}, TileSizes: []int{16},
	})
	if len(moves) == 0 {
		return vs
	}
	move := moves[r.Intn(len(moves))]
	variant, err := xform.Apply(prog, move)
	if err != nil {
		// Structural filters are cheap by design; an illegal move is
		// not a violation.
		return vs
	}
	vtbl, err := sem.Analyze(variant)
	if err != nil {
		fail("incremental-identical", "analyze after %s: %v", move, err)
		return vs
	}

	opt := aggregate.DefaultOptions()
	caches := aggregate.Caches{Seg: aggregate.NewSegCache(), Nest: aggregate.NewNestCache()}
	// Warm the caches on the original program, then re-price the
	// variant incrementally with the move's path as the dirty hint.
	if _, err := aggregate.PriceIncremental(prog, nil, caches, tbl, m, opt); err != nil {
		fail("incremental-identical", "warm pricing: %v", err)
		return vs
	}
	inc, err := aggregate.PriceIncremental(variant, [][]int{move.Path}, caches, vtbl, m, opt)
	if err != nil {
		fail("incremental-identical", "incremental pricing after %s: %v", move, err)
		return vs
	}
	full, err := aggregate.New(vtbl, m, opt).Program(variant)
	if err != nil {
		fail("incremental-identical", "full pricing after %s: %v", move, err)
		return vs
	}
	if inc.Cost.String() != full.Cost.String() || inc.OneTime.String() != full.OneTime.String() {
		fail("incremental-identical", "after %s: incremental %q != full %q",
			move, inc.Cost.String(), full.Cost.String())
	}
	return vs
}

// Summary is the outcome of a corpus run.
type Summary struct {
	// Samples is the number of seeds checked.
	Samples int
	// BlockStats aggregates oracle outcomes.
	BlockStats
	// Violations holds every broken invariant, seed attached.
	Violations []Violation
}

// Run executes the full suite over seeds baseSeed..baseSeed+n-1.
// Block and spec checks run on every seed; the (much costlier)
// whole-pipeline program checks run on every eighth.
func Run(n int, baseSeed int64, cfg Config) Summary {
	var s Summary
	for i := 0; i < n; i++ {
		seed := baseSeed + int64(i)
		bvs, stats := CheckBlock(seed, cfg)
		s.BlockStats.merge(stats)
		s.Violations = append(s.Violations, bvs...)
		s.Violations = append(s.Violations, CheckSpec(seed)...)
		if i%8 == 0 {
			s.Violations = append(s.Violations, CheckProgram(seed)...)
			s.Violations = append(s.Violations, CheckResultCache(seed)...)
			s.Violations = append(s.Violations, CheckMemory(seed)...)
			s.Violations = append(s.Violations, CheckExplain(seed)...)
			s.Violations = append(s.Violations, CheckExplore(seed)...)
		}
		s.Samples++
	}
	return s
}
