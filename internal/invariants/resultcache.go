package invariants

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"perfpredict/internal/progen"
	"perfpredict/internal/serve"
)

// CheckResultCache runs the serving-stack cache invariant for one
// seed: on generated programs against a generated machine spec
// (uploaded inline, the hardest cache-key case — the machine exists
// only as content), the response bytes from a cache-disabled server,
// a cold cached server, and the same cached server asked again are
// identical for every endpoint. The result cache may change latency,
// never content; a divergence means a request field that influences
// response bytes escaped the cache key.
func CheckResultCache(seed int64) []Violation {
	var vs []Violation
	fail := func(inv, format string, a ...any) {
		vs = append(vs, Violation{Invariant: inv, Seed: seed, Detail: fmt.Sprintf(format, a...)})
	}
	r := progen.NewRand(seed)
	srcA := progen.GenProgram(r, progen.ProgramConfig{AllowIf: true})
	srcB := progen.GenProgram(r, progen.ProgramConfig{})
	spec := progen.GenSpec(r, progen.SpecConfig{})
	enc, err := spec.Encode()
	if err != nil {
		fail("gen-spec-valid", "Encode: %v", err)
		return vs
	}

	off := serve.New(serve.Config{DisableResultCache: true}).Handler()
	cached := serve.New(serve.Config{}).Handler()
	post := func(h http.Handler, path string, req any) (int, []byte) {
		body, err := json.Marshal(req)
		if err != nil {
			panic(err)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path,
			strings.NewReader(string(body))))
		return rec.Code, rec.Body.Bytes()
	}
	check := func(label, path string, req any) {
		stOff, bodyOff := post(off, path, req)
		stCold, bodyCold := post(cached, path, req)
		stWarm, bodyWarm := post(cached, path, req)
		if stOff != stCold || stOff != stWarm {
			fail("result-cache-identical", "%s: status off=%d cold=%d warm=%d",
				label, stOff, stCold, stWarm)
			return
		}
		if !bytes.Equal(bodyOff, bodyCold) {
			fail("result-cache-identical", "%s: cold body differs from cache-off\noff:  %s\ncold: %s",
				label, bodyOff, bodyCold)
		}
		if !bytes.Equal(bodyCold, bodyWarm) {
			fail("result-cache-identical", "%s: warm hit differs from its own compute\ncold: %s\nwarm: %s",
				label, bodyCold, bodyWarm)
		}
	}

	check("predict", "/v1/predict", serve.PredictRequest{Source: srcA, Spec: enc})
	check("predict-args", "/v1/predict", serve.PredictRequest{Source: srcA, Spec: enc,
		Args: map[string]float64{"n": 64, "m": 8, "p": 0.5}})
	check("batch", "/v1/batch", serve.BatchRequest{Sources: []string{srcA, srcB, srcA}, Spec: enc})
	check("optimize", "/v1/optimize", serve.OptimizeRequest{Source: srcB, Spec: enc,
		Nominal: map[string]float64{"n": 40}, MaxNodes: 2, MaxDepth: 1})
	return vs
}
