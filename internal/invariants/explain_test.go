package invariants

import (
	"testing"

	"perfpredict/internal/oracle"
	"perfpredict/internal/progen"
	"perfpredict/internal/tetris"
)

// TestCheckExplainSeeds gives the program-level explain suite a
// focused test name, like the other per-kind spot checks.
func TestCheckExplainSeeds(t *testing.T) {
	n := int64(8)
	if testing.Short() {
		n = 2
	}
	for seed := int64(0); seed < n; seed++ {
		for _, v := range CheckExplain(seed) {
			t.Errorf("%s", v)
		}
	}
}

// TestExplainPathDepEdgesAreRealDeps is the differential gate on the
// critical path's structure: every "dep" edge must name a predecessor
// that really is a dependence predecessor under ir's own Deps rules,
// and the producer must finish no later than the consumer.
func TestExplainPathDepEdgesAreRealDeps(t *testing.T) {
	n := int64(150)
	if testing.Short() {
		n = 30
	}
	for seed := int64(0); seed < n; seed++ {
		r := progen.NewRand(seed)
		m, err := progen.GenSpec(r, progen.SpecConfig{}).Machine()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b := progen.GenBlock(r, progen.BlockConfig{AllowControl: true})
		for _, mayAlias := range []bool{false, true} {
			ex, err := tetris.EstimateExplained(m, b, tetris.Options{MayAlias: mayAlias})
			if err != nil {
				t.Fatalf("seed %d mayAlias=%v: %v", seed, mayAlias, err)
			}
			deps := b.Deps(mayAlias)
			for i := 1; i < len(ex.Path); i++ {
				cur, prev := ex.Path[i], ex.Path[i-1]
				if cur.Edge != tetris.EdgeDep {
					continue
				}
				real := false
				for _, j := range deps[cur.Instr] {
					if j == prev.Instr {
						real = true
						break
					}
				}
				if !real {
					t.Errorf("seed %d mayAlias=%v: dep edge #%d -> #%d not in Deps row %v",
						seed, mayAlias, prev.Instr, cur.Instr, deps[cur.Instr])
				}
				if prev.Finish > cur.Finish {
					t.Errorf("seed %d mayAlias=%v: producer #%d finishes at %d after consumer #%d at %d",
						seed, mayAlias, prev.Instr, prev.Finish, cur.Instr, cur.Finish)
				}
			}
		}
	}
}

// TestExplainDepHeightBoundsExactOptimum pins the oracle differential
// directly: on blocks the exact search proves optimal, the explained
// dependence height — a resource-free lower bound — never exceeds the
// optimum's end slot.
func TestExplainDepHeightBoundsExactOptimum(t *testing.T) {
	n := int64(120)
	if testing.Short() {
		n = 25
	}
	proven := 0
	for seed := int64(0); seed < n; seed++ {
		r := progen.NewRand(seed)
		m, err := progen.GenSpec(r, progen.SpecConfig{}).Machine()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b := progen.GenBlock(r, progen.BlockConfig{AllowControl: true})
		for _, mayAlias := range []bool{false, true} {
			topt := tetris.Options{MayAlias: mayAlias}
			exact, err := oracle.Pack(m, b, oracle.Options{
				MayAlias: mayAlias, NodeBudget: 1 << 18, MaxOps: 20,
			})
			if err != nil || !exact.Proven {
				continue
			}
			proven++
			ex, err := tetris.EstimateExplained(m, b, topt)
			if err != nil {
				t.Fatalf("seed %d mayAlias=%v: %v", seed, mayAlias, err)
			}
			if ex.DepHeight > exact.End {
				t.Errorf("seed %d mayAlias=%v: dependence height %d exceeds proven-optimal end %d",
					seed, mayAlias, ex.DepHeight, exact.End)
			}
		}
	}
	if proven == 0 {
		t.Error("oracle proved no sample optimal; the bound was never exercised")
	}
}
