// Package cachesim is a set-associative cache and TLB simulator used as
// the ground truth for the memory-access cost model (§2.3 prices cache
// misses, TLB misses and page faults; this simulator validates the
// cache-line access counting of package cachemodel).
package cachesim

import "fmt"

// Config describes one cache level.
type Config struct {
	// Size is total capacity in bytes.
	Size int64
	// LineSize is the block size in bytes.
	LineSize int64
	// Assoc is the set associativity (0 or negative = fully
	// associative).
	Assoc int
}

// POWER1D is the RS/6000 Model 530-class data cache: 64 KiB,
// 128-byte lines, 4-way.
func POWER1D() Config { return Config{Size: 64 << 10, LineSize: 128, Assoc: 4} }

// POWER1TLB approximates the data TLB: 128 entries over 4 KiB pages,
// 2-way.
func POWER1TLB() Config { return Config{Size: 128 * 4096, LineSize: 4096, Assoc: 2} }

// Cache simulates one level with LRU replacement.
type Cache struct {
	cfg      Config
	sets     int
	assoc    int
	tags     [][]int64 // per set, MRU first
	accesses int64
	misses   int64
}

// New builds a cache; the configuration must be internally consistent.
func New(cfg Config) (*Cache, error) {
	if cfg.Size <= 0 || cfg.LineSize <= 0 || cfg.Size%cfg.LineSize != 0 {
		return nil, fmt.Errorf("cachesim: bad geometry %+v", cfg)
	}
	lines := cfg.Size / cfg.LineSize
	assoc := cfg.Assoc
	if assoc <= 0 || int64(assoc) > lines {
		assoc = int(lines)
	}
	sets := lines / int64(assoc)
	if sets*int64(assoc) != lines {
		return nil, fmt.Errorf("cachesim: associativity %d does not divide %d lines", assoc, lines)
	}
	c := &Cache{cfg: cfg, sets: int(sets), assoc: assoc}
	c.tags = make([][]int64, sets)
	return c, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Access touches a byte address and reports whether it hit.
func (c *Cache) Access(addr int64) bool {
	c.accesses++
	line := addr / c.cfg.LineSize
	set := int(line % int64(c.sets))
	ways := c.tags[set]
	for i, tag := range ways {
		if tag == line {
			// Move to MRU.
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			return true
		}
	}
	c.misses++
	if len(ways) < c.assoc {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = line
	c.tags[set] = ways
	return false
}

// Stats returns accesses and misses so far.
func (c *Cache) Stats() (accesses, misses int64) { return c.accesses, c.misses }

// MissRatio returns misses/accesses (0 when idle).
func (c *Cache) MissRatio() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	c.tags = make([][]int64, c.sets)
	c.accesses, c.misses = 0, 0
}

// Hierarchy bundles a data cache and a TLB sharing one access stream.
type Hierarchy struct {
	L1  *Cache
	TLB *Cache
	// Penalties in cycles.
	L1Miss  int64
	TLBMiss int64
}

// NewPOWER1Hierarchy builds the default POWER1-like memory system with
// the paper-era penalties (≈15-cycle line fill, ≈36-cycle TLB reload).
func NewPOWER1Hierarchy() *Hierarchy {
	return &Hierarchy{
		L1:      MustNew(POWER1D()),
		TLB:     MustNew(POWER1TLB()),
		L1Miss:  15,
		TLBMiss: 36,
	}
}

// Access touches an address through both structures and returns the
// stall cycles incurred.
func (h *Hierarchy) Access(addr int64) int64 {
	var stall int64
	if !h.L1.Access(addr) {
		stall += h.L1Miss
	}
	if h.TLB != nil && !h.TLB.Access(addr) {
		stall += h.TLBMiss
	}
	return stall
}

// MemoryCycles returns the total stall cycles implied by the recorded
// misses.
func (h *Hierarchy) MemoryCycles() int64 {
	_, l1 := h.L1.Stats()
	total := l1 * h.L1Miss
	if h.TLB != nil {
		_, tm := h.TLB.Stats()
		total += tm * h.TLBMiss
	}
	return total
}
