package cachesim

import "testing"

func TestBadGeometry(t *testing.T) {
	for _, cfg := range []Config{
		{Size: 0, LineSize: 64},
		{Size: 100, LineSize: 64}, // not divisible
		{Size: -1, LineSize: 64},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestColdMisses(t *testing.T) {
	c := MustNew(Config{Size: 1024, LineSize: 64, Assoc: 2})
	for i := int64(0); i < 16; i++ {
		if c.Access(i * 64) {
			t.Errorf("cold access %d hit", i)
		}
	}
	acc, miss := c.Stats()
	if acc != 16 || miss != 16 {
		t.Errorf("stats: %d/%d", acc, miss)
	}
}

func TestSpatialHits(t *testing.T) {
	c := MustNew(Config{Size: 1024, LineSize: 64, Assoc: 2})
	c.Access(0)
	for off := int64(8); off < 64; off += 8 {
		if !c.Access(off) {
			t.Errorf("same-line access at %d missed", off)
		}
	}
	if r := c.MissRatio(); r != 1.0/8 {
		t.Errorf("miss ratio = %v", r)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 2-way, 2 sets: lines 0, 2, 4 map to set 0.
	c := MustNew(Config{Size: 256, LineSize: 64, Assoc: 2})
	c.Access(0 * 64)
	c.Access(2 * 64)
	c.Access(0 * 64) // 0 becomes MRU
	c.Access(4 * 64) // evicts 2 (LRU)
	if !c.Access(0 * 64) {
		t.Error("line 0 should have survived")
	}
	if c.Access(2 * 64) {
		t.Error("line 2 should have been evicted")
	}
}

func TestFullyAssociative(t *testing.T) {
	c := MustNew(Config{Size: 512, LineSize: 64, Assoc: 0})
	// 8 lines capacity: touch 8, all hit on second pass.
	for i := int64(0); i < 8; i++ {
		c.Access(i * 64 * 9973) // scattered addresses
	}
	for i := int64(0); i < 8; i++ {
		if !c.Access(i * 64 * 9973) {
			t.Errorf("fully associative line %d evicted early", i)
		}
	}
}

func TestCapacityMissesOnStreaming(t *testing.T) {
	c := MustNew(POWER1D())
	lines := (64 << 10) / 128
	// Stream 4× capacity twice: second pass must miss everywhere.
	for pass := 0; pass < 2; pass++ {
		for i := int64(0); i < int64(lines)*4; i++ {
			c.Access(i * 128)
		}
	}
	_, misses := c.Stats()
	if misses != int64(lines)*8 {
		t.Errorf("streaming misses = %d, want %d", misses, lines*8)
	}
}

func TestReset(t *testing.T) {
	c := MustNew(Config{Size: 1024, LineSize: 64, Assoc: 2})
	c.Access(0)
	c.Reset()
	acc, miss := c.Stats()
	if acc != 0 || miss != 0 {
		t.Error("reset did not clear stats")
	}
	if c.Access(0) {
		t.Error("reset did not clear contents")
	}
}

func TestHierarchy(t *testing.T) {
	h := NewPOWER1Hierarchy()
	stall := h.Access(0)
	if stall != 15+36 {
		t.Errorf("cold stall = %d, want 51", stall)
	}
	if s := h.Access(8); s != 0 {
		t.Errorf("warm stall = %d", s)
	}
	if h.MemoryCycles() != 51 {
		t.Errorf("memory cycles = %d", h.MemoryCycles())
	}
}
