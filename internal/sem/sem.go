// Package sem implements F-lite semantic analysis: symbol tables with
// Fortran implicit typing, array-rank and type checking, PARAMETER
// constant resolution, and constant folding — the "program analysis
// module" whose results feed the instruction-translation module.
package sem

import (
	"fmt"
	"math"

	"perfpredict/internal/source"
)

// Symbol describes one declared (or implicitly typed) entity.
type Symbol struct {
	Name string
	Type source.Type
	// Dims holds the declared dimension extents; nil for scalars. Each
	// extent is the resolved constant size, or -1 when symbolic (e.g. a
	// dummy-argument bound).
	Dims []int64
	// DimExprs are the original extent expressions.
	DimExprs []source.Expr
	// IsConst marks PARAMETER constants, with their folded value.
	IsConst  bool
	ConstVal float64
	// IsDummy marks subroutine arguments.
	IsDummy bool
	// Dist is the HPF distribution directive, if any.
	Dist *source.Distribute
}

// IsArray reports whether the symbol is an array.
func (s *Symbol) IsArray() bool { return len(s.DimExprs) > 0 }

// Rank returns the number of dimensions (0 for scalars).
func (s *Symbol) Rank() int { return len(s.DimExprs) }

// Table is the symbol table of one program unit.
type Table struct {
	Program *source.Program
	syms    map[string]*Symbol
	order   []string
}

// Lookup returns the symbol for name, or nil.
func (t *Table) Lookup(name string) *Symbol { return t.syms[name] }

// Symbols returns all symbols in declaration order.
func (t *Table) Symbols() []*Symbol {
	out := make([]*Symbol, 0, len(t.order))
	for _, n := range t.order {
		out = append(out, t.syms[n])
	}
	return out
}

// Arrays returns array symbols in declaration order.
func (t *Table) Arrays() []*Symbol {
	var out []*Symbol
	for _, s := range t.Symbols() {
		if s.IsArray() {
			out = append(out, s)
		}
	}
	return out
}

func (t *Table) add(s *Symbol) {
	if _, exists := t.syms[s.Name]; !exists {
		t.order = append(t.order, s.Name)
	}
	t.syms[s.Name] = s
}

// implicitType returns the Fortran implicit type for an undeclared
// name: i–n → integer, otherwise real.
func implicitType(name string) source.Type {
	if name == "" {
		return source.TypeReal
	}
	c := name[0]
	if c >= 'i' && c <= 'n' {
		return source.TypeInteger
	}
	return source.TypeReal
}

// Analyze builds and checks the symbol table for a program unit.
func Analyze(p *source.Program) (*Table, error) {
	t := &Table{Program: p, syms: map[string]*Symbol{}}

	// Pass 1: explicit declarations.
	for _, d := range p.Decls {
		for _, n := range d.Names {
			if existing := t.Lookup(n.Name); existing != nil {
				return nil, fmt.Errorf("%s: %q declared twice", d.Pos, n.Name)
			}
			t.add(&Symbol{Name: n.Name, Type: d.Type, DimExprs: n.Dims})
		}
	}
	// Pass 2: PARAMETER constants (may reference earlier constants).
	for _, c := range p.Consts {
		sym := t.Lookup(c.Name)
		if sym == nil {
			sym = &Symbol{Name: c.Name, Type: implicitType(c.Name)}
			t.add(sym)
		}
		if sym.IsArray() {
			return nil, fmt.Errorf("%s: parameter %q is an array", c.Pos, c.Name)
		}
		val, ok := t.FoldConst(c.Value)
		if !ok {
			return nil, fmt.Errorf("%s: parameter %q is not a compile-time constant", c.Pos, c.Name)
		}
		sym.IsConst = true
		sym.ConstVal = val
	}
	// Pass 3: dummy arguments.
	for _, name := range p.Params {
		sym := t.Lookup(name)
		if sym == nil {
			sym = &Symbol{Name: name, Type: implicitType(name)}
			t.add(sym)
		}
		sym.IsDummy = true
	}
	// Pass 4: resolve array extents.
	for _, s := range t.Symbols() {
		for _, dim := range s.DimExprs {
			if v, ok := t.FoldConst(dim); ok {
				iv := int64(v)
				if iv <= 0 {
					return nil, fmt.Errorf("array %q has non-positive extent %d", s.Name, iv)
				}
				s.Dims = append(s.Dims, iv)
			} else {
				s.Dims = append(s.Dims, -1)
			}
		}
	}
	// Pass 5: attach distributions.
	for _, d := range p.Dists {
		sym := t.Lookup(d.Array)
		if sym == nil || !sym.IsArray() {
			return nil, fmt.Errorf("%s: distribute names unknown array %q", d.Pos, d.Array)
		}
		if len(d.Pattern) != sym.Rank() {
			return nil, fmt.Errorf("%s: distribute rank %d != array rank %d", d.Pos, len(d.Pattern), sym.Rank())
		}
		sym.Dist = d
	}
	// Pass 6: walk the body, implicit-typing unseen names and checking
	// uses.
	if err := t.checkStmts(p.Body); err != nil {
		return nil, err
	}
	return t, nil
}

// resolve returns the symbol for a use, creating an implicitly typed
// scalar if absent.
func (t *Table) resolve(name string) *Symbol {
	if s := t.Lookup(name); s != nil {
		return s
	}
	s := &Symbol{Name: name, Type: implicitType(name)}
	t.add(s)
	return s
}

func (t *Table) checkStmts(stmts []source.Stmt) error {
	for _, s := range stmts {
		if err := t.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) checkStmt(s source.Stmt) error {
	switch x := s.(type) {
	case *source.Assign:
		switch lhs := x.LHS.(type) {
		case *source.VarRef:
			sym := t.resolve(lhs.Name)
			if sym.IsConst {
				return fmt.Errorf("%s: assignment to parameter %q", x.Pos, lhs.Name)
			}
			if sym.IsArray() {
				return fmt.Errorf("%s: array %q assigned without subscripts", x.Pos, lhs.Name)
			}
		case *source.ArrayRef:
			if err := t.checkArrayRef(lhs); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%s: invalid assignment target", x.Pos)
		}
		if _, err := t.TypeOf(x.RHS); err != nil {
			return err
		}
		return nil
	case *source.DoLoop:
		sym := t.resolve(x.Var)
		if sym.IsArray() {
			return fmt.Errorf("%s: loop variable %q is an array", x.Pos, x.Var)
		}
		if sym.Type != source.TypeInteger {
			return fmt.Errorf("%s: loop variable %q is not integer", x.Pos, x.Var)
		}
		for _, e := range []source.Expr{x.Lb, x.Ub, x.Step} {
			if e == nil {
				continue
			}
			ty, err := t.TypeOf(e)
			if err != nil {
				return err
			}
			if ty != source.TypeInteger {
				return fmt.Errorf("%s: loop bound %s is not integer", x.Pos, source.ExprString(e))
			}
		}
		return t.checkStmts(x.Body)
	case *source.IfStmt:
		if _, err := t.TypeOf(x.Cond); err != nil {
			return err
		}
		if !isLogicalExpr(x.Cond) {
			return fmt.Errorf("%s: if condition %s is not a logical expression", x.Pos, source.ExprString(x.Cond))
		}
		if err := t.checkStmts(x.Then); err != nil {
			return err
		}
		return t.checkStmts(x.Else)
	case *source.CallStmt:
		for _, a := range x.Args {
			// Whole-array arguments are allowed.
			if vr, ok := a.(*source.VarRef); ok {
				t.resolve(vr.Name)
				continue
			}
			if _, err := t.TypeOf(a); err != nil {
				return err
			}
		}
		return nil
	case *source.ContinueStmt, *source.ReturnStmt:
		return nil
	default:
		return fmt.Errorf("unknown statement %T", s)
	}
}

func (t *Table) checkArrayRef(a *source.ArrayRef) error {
	sym := t.resolve(a.Name)
	if !sym.IsArray() {
		return fmt.Errorf("%s: %q subscripted but not an array", a.Pos, a.Name)
	}
	if len(a.Idx) != sym.Rank() {
		return fmt.Errorf("%s: %q has rank %d, subscripted with %d indices", a.Pos, a.Name, sym.Rank(), len(a.Idx))
	}
	for _, ix := range a.Idx {
		ty, err := t.TypeOf(ix)
		if err != nil {
			return err
		}
		if ty != source.TypeInteger {
			return fmt.Errorf("%s: non-integer subscript %s", a.Pos, source.ExprString(ix))
		}
	}
	return nil
}

// isLogicalExpr reports whether e is a relational/logical expression.
func isLogicalExpr(e source.Expr) bool {
	switch x := e.(type) {
	case *source.BinExpr:
		return x.Kind.IsRelational() || x.Kind.IsLogical()
	case *source.UnExpr:
		return !x.Neg && isLogicalExpr(x.X)
	default:
		return false
	}
}

// TypeOf infers the numeric type of an expression, resolving implicit
// types along the way. Relational and logical expressions report
// TypeInteger (F-lite treats logicals as integers for cost purposes).
func (t *Table) TypeOf(e source.Expr) (source.Type, error) {
	switch x := e.(type) {
	case *source.NumLit:
		if x.IsReal {
			return source.TypeReal, nil
		}
		return source.TypeInteger, nil
	case *source.VarRef:
		sym := t.resolve(x.Name)
		if sym.IsArray() {
			return source.TypeUnknown, fmt.Errorf("%s: array %q used as scalar", x.Pos, x.Name)
		}
		return sym.Type, nil
	case *source.ArrayRef:
		if err := t.checkArrayRef(x); err != nil {
			return source.TypeUnknown, err
		}
		return t.resolve(x.Name).Type, nil
	case *source.UnExpr:
		return t.TypeOf(x.X)
	case *source.IntrinsicCall:
		var argTy source.Type = source.TypeInteger
		for _, a := range x.Args {
			ty, err := t.TypeOf(a)
			if err != nil {
				return source.TypeUnknown, err
			}
			if ty == source.TypeReal {
				argTy = source.TypeReal
			}
		}
		switch x.Name {
		case "int":
			return source.TypeInteger, nil
		case "real", "dble", "sqrt", "exp", "log", "sin", "cos":
			return source.TypeReal, nil
		case "mod", "abs", "min", "max":
			return argTy, nil
		default:
			return source.TypeUnknown, fmt.Errorf("%s: unknown intrinsic %q", x.Pos, x.Name)
		}
	case *source.BinExpr:
		lt, err := t.TypeOf(x.L)
		if err != nil {
			return source.TypeUnknown, err
		}
		rt, err := t.TypeOf(x.R)
		if err != nil {
			return source.TypeUnknown, err
		}
		if x.Kind.IsRelational() || x.Kind.IsLogical() {
			return source.TypeInteger, nil
		}
		if lt == source.TypeReal || rt == source.TypeReal {
			return source.TypeReal, nil
		}
		return source.TypeInteger, nil
	default:
		return source.TypeUnknown, fmt.Errorf("unknown expression %T", e)
	}
}

// FoldConst evaluates e when it only involves literals and PARAMETER
// constants.
func (t *Table) FoldConst(e source.Expr) (float64, bool) {
	switch x := e.(type) {
	case *source.NumLit:
		return x.Value, true
	case *source.VarRef:
		if s := t.Lookup(x.Name); s != nil && s.IsConst {
			return s.ConstVal, true
		}
		return 0, false
	case *source.UnExpr:
		if !x.Neg {
			return 0, false
		}
		v, ok := t.FoldConst(x.X)
		return -v, ok
	case *source.IntrinsicCall:
		args := make([]float64, len(x.Args))
		for i, a := range x.Args {
			v, ok := t.FoldConst(a)
			if !ok {
				return 0, false
			}
			args[i] = v
		}
		switch x.Name {
		case "abs":
			return math.Abs(args[0]), true
		case "sqrt":
			return math.Sqrt(args[0]), true
		case "int":
			return math.Trunc(args[0]), true
		case "real", "dble":
			return args[0], true
		case "mod":
			if args[1] == 0 {
				return 0, false
			}
			return math.Mod(args[0], args[1]), true
		case "min":
			v := args[0]
			for _, a := range args[1:] {
				v = math.Min(v, a)
			}
			return v, true
		case "max":
			v := args[0]
			for _, a := range args[1:] {
				v = math.Max(v, a)
			}
			return v, true
		default:
			return 0, false
		}
	case *source.BinExpr:
		l, ok := t.FoldConst(x.L)
		if !ok {
			return 0, false
		}
		r, ok := t.FoldConst(x.R)
		if !ok {
			return 0, false
		}
		switch x.Kind {
		case source.BinAdd:
			return l + r, true
		case source.BinSub:
			return l - r, true
		case source.BinMul:
			return l * r, true
		case source.BinDiv:
			if r == 0 {
				return 0, false
			}
			// Integer division truncates.
			if lt, err1 := t.TypeOf(x.L); err1 == nil && lt == source.TypeInteger {
				if rt, err2 := t.TypeOf(x.R); err2 == nil && rt == source.TypeInteger {
					return math.Trunc(l / r), true
				}
			}
			return l / r, true
		case source.BinPow:
			return math.Pow(l, r), true
		default:
			return 0, false
		}
	default:
		return 0, false
	}
}

// IntConst folds e to an integer constant if possible.
func (t *Table) IntConst(e source.Expr) (int64, bool) {
	v, ok := t.FoldConst(e)
	if !ok || v != math.Trunc(v) {
		return 0, false
	}
	return int64(v), true
}
