package sem

import (
	"strings"
	"testing"

	"perfpredict/internal/source"
)

func analyze(t *testing.T, src string) *Table {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tbl, err := Analyze(p)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return tbl
}

func analyzeErr(t *testing.T, src string) error {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Analyze(p)
	if err == nil {
		t.Fatalf("expected semantic error for:\n%s", src)
	}
	return err
}

func TestSymbolsAndDims(t *testing.T) {
	tbl := analyze(t, `
program p
  integer n, i
  real a(100, 200), x
  parameter (n = 100)
  do i = 1, n
    a(i, 1) = x
  end do
end
`)
	a := tbl.Lookup("a")
	if a == nil || !a.IsArray() || a.Rank() != 2 {
		t.Fatalf("a: %+v", a)
	}
	if a.Dims[0] != 100 || a.Dims[1] != 200 {
		t.Errorf("dims: %v", a.Dims)
	}
	n := tbl.Lookup("n")
	if !n.IsConst || n.ConstVal != 100 {
		t.Errorf("n: %+v", n)
	}
	if x := tbl.Lookup("x"); x.Type != source.TypeReal || x.IsArray() {
		t.Errorf("x: %+v", x)
	}
	if len(tbl.Arrays()) != 1 {
		t.Errorf("arrays: %v", tbl.Arrays())
	}
}

func TestParameterDimension(t *testing.T) {
	tbl := analyze(t, `
program p
  integer n
  parameter (n = 64)
  real a(n, n)
  a(1,1) = 0.0
end
`)
	a := tbl.Lookup("a")
	if a.Dims[0] != 64 || a.Dims[1] != 64 {
		t.Errorf("dims: %v", a.Dims)
	}
}

func TestSymbolicDims(t *testing.T) {
	tbl := analyze(t, `
subroutine s(n)
  integer n
  real a(n)
  a(1) = 0.0
end
`)
	a := tbl.Lookup("a")
	if a.Dims[0] != -1 {
		t.Errorf("symbolic dim: %v", a.Dims)
	}
	if !tbl.Lookup("n").IsDummy {
		t.Error("n not marked dummy")
	}
}

func TestImplicitTyping(t *testing.T) {
	tbl := analyze(t, `
program p
  x = 1.0
  idx = 3
end
`)
	if tbl.Lookup("x").Type != source.TypeReal {
		t.Error("x should be real")
	}
	if tbl.Lookup("idx").Type != source.TypeInteger {
		t.Error("idx should be integer")
	}
}

func TestTypeOf(t *testing.T) {
	tbl := analyze(t, `
program p
  integer i, n
  real x, a(10)
  x = a(i) + 1.0
  i = n / 2
end
`)
	p := tbl.Program
	// x = a(i) + 1.0 → real
	rhs := p.Body[0].(*source.Assign).RHS
	ty, err := tbl.TypeOf(rhs)
	if err != nil || ty != source.TypeReal {
		t.Errorf("TypeOf = %v, %v", ty, err)
	}
	// i = n/2 → integer
	rhs2 := p.Body[1].(*source.Assign).RHS
	ty, err = tbl.TypeOf(rhs2)
	if err != nil || ty != source.TypeInteger {
		t.Errorf("TypeOf = %v, %v", ty, err)
	}
}

func TestMixedTypePromotion(t *testing.T) {
	tbl := analyze(t, "program p\n integer i\n real x\n x = i * 2.0\nend\n")
	rhs := tbl.Program.Body[0].(*source.Assign).RHS
	ty, _ := tbl.TypeOf(rhs)
	if ty != source.TypeReal {
		t.Errorf("int*real = %v", ty)
	}
}

func TestFoldConst(t *testing.T) {
	tbl := analyze(t, `
program p
  integer n, m
  parameter (n = 10, m = n * 4 + 2)
  real x
  x = 1.0
end
`)
	m := tbl.Lookup("m")
	if !m.IsConst || m.ConstVal != 42 {
		t.Errorf("m = %+v", m)
	}
	// Fold intrinsics and power.
	p, _ := source.Parse("program q\n integer k\n parameter (k = max(3, 5) + 2**3 + abs(-1) + min(9, 4) + mod(7, 4) + int(2.9))\n real x\n x = 1.0\nend\n")
	tbl2, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	k := tbl2.Lookup("k")
	want := float64(5 + 8 + 1 + 4 + 3 + 2)
	if k.ConstVal != want {
		t.Errorf("k = %v, want %v", k.ConstVal, want)
	}
}

func TestIntegerDivisionFolds(t *testing.T) {
	tbl := analyze(t, "program p\n integer k\n parameter (k = 7 / 2)\n real x\n x = 1.0\nend\n")
	if v := tbl.Lookup("k").ConstVal; v != 3 {
		t.Errorf("7/2 folded to %v", v)
	}
}

func TestIntConst(t *testing.T) {
	tbl := analyze(t, "program p\n integer n\n parameter (n = 8)\n real x\n x = 1.0\nend\n")
	v, ok := tbl.IntConst(&source.VarRef{Name: "n"})
	if !ok || v != 8 {
		t.Errorf("IntConst = %v, %v", v, ok)
	}
	if _, ok := tbl.IntConst(&source.VarRef{Name: "x"}); ok {
		t.Error("non-const folded")
	}
}

func TestDistributionAttached(t *testing.T) {
	tbl := analyze(t, `
program p
  real a(64, 64)
!hpf$ distribute a(block, *)
  a(1,1) = 0.0
end
`)
	a := tbl.Lookup("a")
	if a.Dist == nil || a.Dist.Pattern[0] != "block" {
		t.Errorf("dist: %+v", a.Dist)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"duplicate decl": `
program p
  integer x
  real x
  x = 1
end`,
		"const not constant": `
program p
  integer n, m
  parameter (n = m + 1)
  real x
  x = 1.0
end`,
		"assign to parameter": `
program p
  integer n
  parameter (n = 10)
  n = 5
end`,
		"rank mismatch": `
program p
  real a(10, 10)
  a(1) = 0.0
end`,
		"scalar subscripted": `
program p
  real x
  x(1) = 0.0
end`,
		"array as scalar": `
program p
  real a(10), x
  x = a + 1.0
end`,
		"real loop var": `
program p
  real r
  integer n
  do r = 1, n
    n = n
  end do
end`,
		"real loop bound": `
program p
  integer i
  real x
  do i = 1, x
    x = x
  end do
end`,
		"non-integer subscript": `
program p
  real a(10), x
  a(x) = 0.0
end`,
		"non-logical if": `
program p
  integer i
  real x
  if (i + 1) x = 1.0
end`,
		"distribute unknown array": `
program p
  real x
!hpf$ distribute q(block)
  x = 1.0
end`,
		"distribute rank mismatch": `
program p
  real a(10, 10)
!hpf$ distribute a(block)
  a(1,1) = 0.0
end`,
		"array assigned whole": `
program p
  real a(10)
  a = 0.0
end`,
		"non-positive extent": `
program p
  real a(0)
  a(1) = 0.0
end`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			err := analyzeErr(t, src)
			if err.Error() == "" {
				t.Error("empty error message")
			}
		})
	}
}

func TestLogicalConditionForms(t *testing.T) {
	// .not. of a relational is fine; relational chains are fine.
	analyze(t, `
program p
  integer i, n
  real x
  if (.not. (i .gt. n) .and. i .le. 10) x = 1.0
end
`)
}

func TestCallWithWholeArray(t *testing.T) {
	tbl := analyze(t, `
program p
  real a(10)
  integer n
  call sub(a, n)
end
`)
	if tbl.Lookup("a") == nil {
		t.Error("array arg not resolved")
	}
}

func TestErrorMessagesCarryPosition(t *testing.T) {
	err := analyzeErr(t, "program p\n real a(10,10)\n a(1) = 0.0\nend\n")
	if !strings.Contains(err.Error(), ":") {
		t.Errorf("error lacks position: %v", err)
	}
}
