package source

import (
	"fmt"
	"strings"
)

// Type is an F-lite scalar element type.
type Type int

const (
	TypeUnknown Type = iota
	TypeInteger
	TypeReal
)

func (t Type) String() string {
	switch t {
	case TypeInteger:
		return "integer"
	case TypeReal:
		return "real"
	default:
		return "unknown"
	}
}

// Program is a compiled unit: a PROGRAM or SUBROUTINE with
// declarations, HPF directives, and a statement body.
type Program struct {
	Name   string
	Params []string // subroutine dummy arguments
	Decls  []*Decl
	Consts []*Const
	Dists  []*Distribute
	Body   []Stmt
	Pos    Pos
}

// Decl declares one or more variables of a type; arrays carry their
// dimension extents (each an Expr, usually a constant or parameter).
type Decl struct {
	Type  Type
	Names []*DeclName
	Pos   Pos
}

// DeclName is a declared entity with optional array dimensions.
type DeclName struct {
	Name string
	Dims []Expr // empty for scalars
}

// Const is a PARAMETER (name = value) binding.
type Const struct {
	Name  string
	Value Expr
	Pos   Pos
}

// Distribute records an `!hpf$ distribute a(block, *)` directive.
type Distribute struct {
	Array string
	// Pattern per dimension: "block", "cyclic", or "*" (not
	// distributed).
	Pattern []string
	Pos     Pos
}

// Stmt is any statement node.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// Assign is lhs = rhs. The LHS is a VarRef or ArrayRef.
type Assign struct {
	LHS Expr
	RHS Expr
	Pos Pos
}

// DoLoop is `do v = lb, ub[, step] … end do`.
type DoLoop struct {
	Var    string
	Lb, Ub Expr
	Step   Expr // nil means 1
	Body   []Stmt
	Pos    Pos
}

// IfStmt is `if (cond) then … [else …] end if` (or the one-line form,
// represented with a single-statement Then and nil Else).
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // nil if absent
	Pos  Pos
}

// CallStmt is `call name(args)`.
type CallStmt struct {
	Name string
	Args []Expr
	Pos  Pos
}

// ContinueStmt is a no-op placeholder (`continue`).
type ContinueStmt struct{ Pos Pos }

// ReturnStmt ends subroutine execution.
type ReturnStmt struct{ Pos Pos }

func (*Assign) stmtNode()       {}
func (*DoLoop) stmtNode()       {}
func (*IfStmt) stmtNode()       {}
func (*CallStmt) stmtNode()     {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}

func (s *Assign) StmtPos() Pos       { return s.Pos }
func (s *DoLoop) StmtPos() Pos       { return s.Pos }
func (s *IfStmt) StmtPos() Pos       { return s.Pos }
func (s *CallStmt) StmtPos() Pos     { return s.Pos }
func (s *ContinueStmt) StmtPos() Pos { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos   { return s.Pos }

// Expr is any expression node.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// BinKind enumerates binary operators.
type BinKind int

const (
	BinAdd BinKind = iota
	BinSub
	BinMul
	BinDiv
	BinPow
	BinLT
	BinLE
	BinGT
	BinGE
	BinEQ
	BinNE
	BinAnd
	BinOr
)

var binNames = map[BinKind]string{
	BinAdd: "+", BinSub: "-", BinMul: "*", BinDiv: "/", BinPow: "**",
	BinLT: ".lt.", BinLE: ".le.", BinGT: ".gt.", BinGE: ".ge.",
	BinEQ: ".eq.", BinNE: ".ne.", BinAnd: ".and.", BinOr: ".or.",
}

func (k BinKind) String() string { return binNames[k] }

// IsRelational reports comparison operators.
func (k BinKind) IsRelational() bool { return k >= BinLT && k <= BinNE }

// IsLogical reports .and./.or.
func (k BinKind) IsLogical() bool { return k == BinAnd || k == BinOr }

// BinExpr is a binary operation.
type BinExpr struct {
	Kind BinKind
	L, R Expr
	Pos  Pos
}

// UnExpr is unary minus or .not.
type UnExpr struct {
	Neg bool // true: -x, false: .not. x
	X   Expr
	Pos Pos
}

// NumLit is a numeric literal.
type NumLit struct {
	Value  float64
	IsReal bool
	Pos    Pos
}

// VarRef references a scalar variable (or parameter constant).
type VarRef struct {
	Name string
	Pos  Pos
}

// ArrayRef references an array element a(e1, e2, …).
type ArrayRef struct {
	Name string
	Idx  []Expr
	Pos  Pos
}

// IntrinsicCall is sqrt(x), abs(x), min(a,b), max(a,b), mod(a,b),
// int(x), real(x), dble(x).
type IntrinsicCall struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (*BinExpr) exprNode()       {}
func (*UnExpr) exprNode()        {}
func (*NumLit) exprNode()        {}
func (*VarRef) exprNode()        {}
func (*ArrayRef) exprNode()      {}
func (*IntrinsicCall) exprNode() {}

func (e *BinExpr) ExprPos() Pos       { return e.Pos }
func (e *UnExpr) ExprPos() Pos        { return e.Pos }
func (e *NumLit) ExprPos() Pos        { return e.Pos }
func (e *VarRef) ExprPos() Pos        { return e.Pos }
func (e *ArrayRef) ExprPos() Pos      { return e.Pos }
func (e *IntrinsicCall) ExprPos() Pos { return e.Pos }

// Intrinsics lists the recognized intrinsic functions and their arity
// (−1 = variadic ≥ 2).
var Intrinsics = map[string]int{
	"sqrt": 1, "abs": 1, "min": -1, "max": -1, "mod": 2,
	"int": 1, "real": 1, "dble": 1, "exp": 1, "log": 1,
	"sin": 1, "cos": 1,
}

// ExprString renders an expression in F-lite syntax.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *NumLit:
		if x.IsReal {
			s := fmt.Sprintf("%g", x.Value)
			if !strings.ContainsAny(s, ".eE") {
				s += ".0"
			}
			return s
		}
		return fmt.Sprintf("%d", int64(x.Value))
	case *VarRef:
		return x.Name
	case *ArrayRef:
		parts := make([]string, len(x.Idx))
		for i, ix := range x.Idx {
			parts[i] = ExprString(ix)
		}
		return x.Name + "(" + strings.Join(parts, ",") + ")"
	case *IntrinsicCall:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = ExprString(a)
		}
		return x.Name + "(" + strings.Join(parts, ",") + ")"
	case *UnExpr:
		if x.Neg {
			return "(-" + ExprString(x.X) + ")"
		}
		return "(.not. " + ExprString(x.X) + ")"
	case *BinExpr:
		op := x.Kind.String()
		if x.Kind.IsRelational() || x.Kind.IsLogical() {
			op = " " + op + " "
		}
		return "(" + ExprString(x.L) + op + ExprString(x.R) + ")"
	default:
		return "?"
	}
}

// CloneExpr deep-copies an expression tree.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case *NumLit:
		c := *x
		return &c
	case *VarRef:
		c := *x
		return &c
	case *ArrayRef:
		c := &ArrayRef{Name: x.Name, Pos: x.Pos}
		for _, ix := range x.Idx {
			c.Idx = append(c.Idx, CloneExpr(ix))
		}
		return c
	case *IntrinsicCall:
		c := &IntrinsicCall{Name: x.Name, Pos: x.Pos}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *UnExpr:
		return &UnExpr{Neg: x.Neg, X: CloneExpr(x.X), Pos: x.Pos}
	case *BinExpr:
		return &BinExpr{Kind: x.Kind, L: CloneExpr(x.L), R: CloneExpr(x.R), Pos: x.Pos}
	default:
		return e
	}
}

// CloneStmt deep-copies a statement tree.
func CloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case *Assign:
		return &Assign{LHS: CloneExpr(x.LHS), RHS: CloneExpr(x.RHS), Pos: x.Pos}
	case *DoLoop:
		c := &DoLoop{Var: x.Var, Lb: CloneExpr(x.Lb), Ub: CloneExpr(x.Ub), Pos: x.Pos}
		if x.Step != nil {
			c.Step = CloneExpr(x.Step)
		}
		c.Body = CloneStmts(x.Body)
		return c
	case *IfStmt:
		c := &IfStmt{Cond: CloneExpr(x.Cond), Pos: x.Pos}
		c.Then = CloneStmts(x.Then)
		if x.Else != nil {
			c.Else = CloneStmts(x.Else)
		}
		return c
	case *CallStmt:
		c := &CallStmt{Name: x.Name, Pos: x.Pos}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *ContinueStmt:
		cc := *x
		return &cc
	case *ReturnStmt:
		cc := *x
		return &cc
	default:
		return s
	}
}

// CloneStmts deep-copies a statement list.
func CloneStmts(list []Stmt) []Stmt {
	if list == nil {
		return nil
	}
	out := make([]Stmt, len(list))
	for i, s := range list {
		out[i] = CloneStmt(s)
	}
	return out
}

// CloneProgram deep-copies a program.
func CloneProgram(p *Program) *Program {
	c := &Program{Name: p.Name, Pos: p.Pos}
	c.Params = append([]string(nil), p.Params...)
	for _, d := range p.Decls {
		nd := &Decl{Type: d.Type, Pos: d.Pos}
		for _, n := range d.Names {
			dn := &DeclName{Name: n.Name}
			for _, dim := range n.Dims {
				dn.Dims = append(dn.Dims, CloneExpr(dim))
			}
			nd.Names = append(nd.Names, dn)
		}
		c.Decls = append(c.Decls, nd)
	}
	for _, k := range p.Consts {
		c.Consts = append(c.Consts, &Const{Name: k.Name, Value: CloneExpr(k.Value), Pos: k.Pos})
	}
	for _, d := range p.Dists {
		c.Dists = append(c.Dists, &Distribute{Array: d.Array, Pattern: append([]string(nil), d.Pattern...), Pos: d.Pos})
	}
	c.Body = CloneStmts(p.Body)
	return c
}
