package source

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser for F-lite.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete F-lite program or subroutine.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	p.skipNewlines()
	if p.cur().Kind != TokEOF {
		return nil, p.errf("trailing input after end of program")
	}
	return prog, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s: %s (near %q)", p.cur().Pos, fmt.Sprintf(format, args...), p.cur().Text)
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, p.errf("expected %s", k)
	}
	return p.next(), nil
}

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) skipNewlines() {
	for p.cur().Kind == TokNewline {
		p.next()
	}
}

func (p *Parser) expectEOL() error {
	if k := p.cur().Kind; k != TokNewline && k != TokEOF {
		return p.errf("expected end of line")
	}
	p.skipNewlines()
	return nil
}

func (p *Parser) parseProgram() (*Program, error) {
	p.skipNewlines()
	prog := &Program{Pos: p.cur().Pos}
	switch p.cur().Kind {
	case TokProgram:
		p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		prog.Name = name.Text
	case TokSubroutine:
		p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		prog.Name = name.Text
		if p.accept(TokLParen) {
			for p.cur().Kind != TokRParen {
				arg, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				prog.Params = append(prog.Params, arg.Text)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
		}
	default:
		return nil, p.errf("expected program or subroutine")
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}

	// Declaration section: type decls, parameters, directives.
	for {
		p.skipNewlines()
		switch p.cur().Kind {
		case TokInteger, TokRealKw:
			d, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			prog.Decls = append(prog.Decls, d)
		case TokParameter:
			cs, err := p.parseParameter()
			if err != nil {
				return nil, err
			}
			prog.Consts = append(prog.Consts, cs...)
		case TokDirective:
			d, err := p.parseDirective()
			if err != nil {
				return nil, err
			}
			if d != nil {
				prog.Dists = append(prog.Dists, d)
			}
		default:
			goto body
		}
	}
body:
	stmts, err := p.parseStmts(func(k TokKind) bool { return k == TokEnd })
	if err != nil {
		return nil, err
	}
	prog.Body = stmts
	if _, err := p.expect(TokEnd); err != nil {
		return nil, err
	}
	// Optional "end program name".
	if p.cur().Kind == TokProgram || p.cur().Kind == TokSubroutine {
		p.next()
		p.accept(TokIdent)
	}
	return prog, nil
}

func (p *Parser) parseDecl() (*Decl, error) {
	d := &Decl{Pos: p.cur().Pos}
	switch p.next().Kind {
	case TokInteger:
		d.Type = TypeInteger
	case TokRealKw:
		d.Type = TypeReal
	}
	// Optional kind: real*8 — accepted and ignored (all reals are doubles).
	if p.accept(TokStar) {
		if _, err := p.expect(TokInt); err != nil {
			return nil, err
		}
	}
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		dn := &DeclName{Name: name.Text}
		if p.accept(TokLParen) {
			for {
				dim, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				dn.Dims = append(dn.Dims, dim)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
		}
		d.Names = append(d.Names, dn)
		if !p.accept(TokComma) {
			break
		}
	}
	return d, p.expectEOL()
}

func (p *Parser) parseParameter() ([]*Const, error) {
	pos := p.cur().Pos
	p.next() // parameter
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var out []*Const
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, &Const{Name: name.Text, Value: val, Pos: pos})
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return out, p.expectEOL()
}

// parseDirective parses `distribute a(block, *)` from a TokDirective
// token. Unrecognized directives are ignored.
func (p *Parser) parseDirective() (*Distribute, error) {
	tok := p.next()
	body := strings.ToLower(strings.TrimSpace(tok.Text))
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	if !strings.HasPrefix(body, "distribute") {
		return nil, nil
	}
	rest := strings.TrimSpace(body[len("distribute"):])
	open := strings.Index(rest, "(")
	close := strings.LastIndex(rest, ")")
	if open < 1 || close < open {
		return nil, fmt.Errorf("%s: malformed distribute directive %q", tok.Pos, tok.Text)
	}
	d := &Distribute{Array: strings.TrimSpace(rest[:open]), Pos: tok.Pos}
	for _, part := range strings.Split(rest[open+1:close], ",") {
		pat := strings.TrimSpace(part)
		switch pat {
		case "block", "cyclic", "*":
			d.Pattern = append(d.Pattern, pat)
		default:
			return nil, fmt.Errorf("%s: unknown distribution pattern %q", tok.Pos, pat)
		}
	}
	return d, nil
}

// parseStmts parses statements until stop(cur.Kind) is true.
func (p *Parser) parseStmts(stop func(TokKind) bool) ([]Stmt, error) {
	var out []Stmt
	for {
		p.skipNewlines()
		k := p.cur().Kind
		if stop(k) || k == TokEOF {
			return out, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
	}
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokDo:
		return p.parseDo()
	case TokIf:
		return p.parseIf()
	case TokCall:
		return p.parseCall()
	case TokContinue:
		pos := p.next().Pos
		return &ContinueStmt{pos}, p.expectEOL()
	case TokReturn:
		pos := p.next().Pos
		return &ReturnStmt{pos}, p.expectEOL()
	case TokIdent:
		return p.parseAssign()
	case TokDirective:
		p.next() // directives inside bodies are ignored
		return nil, p.expectEOL()
	default:
		return nil, p.errf("expected statement")
	}
}

func (p *Parser) parseDo() (Stmt, error) {
	pos := p.next().Pos // do
	v, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	lb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	ub, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var step Expr
	if p.accept(TokComma) {
		if step, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	body, err := p.parseStmts(func(k TokKind) bool { return k == TokEndDo || k == TokEnd })
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokEndDo:
		p.next()
	case TokEnd:
		// "end do" as two tokens.
		p.next()
		if !p.accept(TokDo) {
			return nil, p.errf("expected 'do' after 'end' closing a loop")
		}
	default:
		return nil, p.errf("unterminated do loop")
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	return &DoLoop{Var: v.Text, Lb: lb, Ub: ub, Step: step, Body: body, Pos: pos}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.next().Pos // if
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if !p.accept(TokThen) {
		// One-line if.
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &IfStmt{Cond: cond, Then: []Stmt{s}, Pos: pos}, nil
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	isEnd := func(k TokKind) bool {
		return k == TokElse || k == TokElseIf || k == TokEndIf || k == TokEnd
	}
	then, err := p.parseStmts(isEnd)
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: pos}
	switch p.cur().Kind {
	case TokElseIf:
		// else if (…) then …: parse as nested if in the else branch.
		nested, err := p.parseElseIfChain()
		if err != nil {
			return nil, err
		}
		st.Else = []Stmt{nested}
		return st, nil
	case TokElse:
		p.next()
		// Possibly "else if".
		if p.cur().Kind == TokIf {
			nested, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{nested}
			return st, nil
		}
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		els, err := p.parseStmts(func(k TokKind) bool { return k == TokEndIf || k == TokEnd })
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	switch p.cur().Kind {
	case TokEndIf:
		p.next()
	case TokEnd:
		p.next()
		if !p.accept(TokIf) {
			return nil, p.errf("expected 'if' after 'end' closing a conditional")
		}
	default:
		return nil, p.errf("unterminated if")
	}
	return st, p.expectEOL()
}

// parseElseIfChain handles the `elseif (cond) then` keyword form by
// rewriting it into a nested IfStmt.
func (p *Parser) parseElseIfChain() (Stmt, error) {
	p.next() // elseif
	// Reuse parseIf logic by faking: we are at '(' now.
	pos := p.cur().Pos
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokThen); err != nil {
		return nil, err
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	isEnd := func(k TokKind) bool {
		return k == TokElse || k == TokElseIf || k == TokEndIf || k == TokEnd
	}
	then, err := p.parseStmts(isEnd)
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: pos}
	switch p.cur().Kind {
	case TokElseIf:
		nested, err := p.parseElseIfChain()
		if err != nil {
			return nil, err
		}
		st.Else = []Stmt{nested}
		return st, nil
	case TokElse:
		p.next()
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		els, err := p.parseStmts(func(k TokKind) bool { return k == TokEndIf || k == TokEnd })
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	switch p.cur().Kind {
	case TokEndIf:
		p.next()
	case TokEnd:
		p.next()
		if !p.accept(TokIf) {
			return nil, p.errf("expected 'if' after 'end'")
		}
	default:
		return nil, p.errf("unterminated elseif")
	}
	return st, p.expectEOL()
}

func (p *Parser) parseCall() (Stmt, error) {
	pos := p.next().Pos // call
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	st := &CallStmt{Name: name.Text, Pos: pos}
	if p.accept(TokLParen) {
		for p.cur().Kind != TokRParen {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Args = append(st.Args, a)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	return st, p.expectEOL()
}

func (p *Parser) parseAssign() (Stmt, error) {
	pos := p.cur().Pos
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	switch lhs.(type) {
	case *VarRef, *ArrayRef:
	default:
		return nil, p.errf("invalid assignment target")
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Assign{LHS: lhs, RHS: rhs, Pos: pos}, p.expectEOL()
}

// Expression grammar (loosest to tightest):
//
//	expr    := orExpr
//	orExpr  := andExpr { .or. andExpr }
//	andExpr := notExpr { .and. notExpr }
//	notExpr := [.not.] relExpr
//	relExpr := addExpr [ relop addExpr ]
//	addExpr := mulExpr { (+|-) mulExpr }
//	mulExpr := unExpr { (*|/) unExpr }
//	unExpr  := [-|+] powExpr
//	powExpr := primary [ ** unExpr ]     (right associative)
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOr {
		pos := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Kind: BinOr, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokAnd {
		pos := p.next().Pos
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Kind: BinAnd, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.cur().Kind == TokNot {
		pos := p.next().Pos
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Neg: false, X: x, Pos: pos}, nil
	}
	return p.parseRel()
}

var relKinds = map[TokKind]BinKind{
	TokLT: BinLT, TokLE: BinLE, TokGT: BinGT,
	TokGE: BinGE, TokEQ: BinEQ, TokNE: BinNE,
}

func (p *Parser) parseRel() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if bk, ok := relKinds[p.cur().Kind]; ok {
		pos := p.next().Pos
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Kind: bk, L: l, R: r, Pos: pos}, nil
	}
	return l, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var bk BinKind
		switch p.cur().Kind {
		case TokPlus:
			bk = BinAdd
		case TokMinus:
			bk = BinSub
		default:
			return l, nil
		}
		pos := p.next().Pos
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Kind: bk, L: l, R: r, Pos: pos}
	}
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var bk BinKind
		switch p.cur().Kind {
		case TokStar:
			bk = BinMul
		case TokSlash:
			bk = BinDiv
		default:
			return l, nil
		}
		pos := p.next().Pos
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Kind: bk, L: l, R: r, Pos: pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus:
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Neg: true, X: x, Pos: pos}, nil
	case TokPlus:
		p.next()
		return p.parseUnary()
	}
	return p.parsePow()
}

func (p *Parser) parsePow() (Expr, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokPower {
		pos := p.next().Pos
		exp, err := p.parseUnary() // right associative, binds unary minus
		if err != nil {
			return nil, err
		}
		return &BinExpr{Kind: BinPow, L: base, R: exp, Pos: pos}, nil
	}
	return base, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	// The type keyword `real` doubles as the conversion intrinsic in
	// expression context: real(i).
	if tok.Kind == TokRealKw && p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokLParen {
		tok = Token{Kind: TokIdent, Text: "real", Pos: tok.Pos}
		p.toks[p.pos] = tok
	}
	switch tok.Kind {
	case TokInt:
		p.next()
		v, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad integer %q", tok.Pos, tok.Text)
		}
		return &NumLit{Value: float64(v), Pos: tok.Pos}, nil
	case TokReal:
		p.next()
		v, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad real %q", tok.Pos, tok.Text)
		}
		return &NumLit{Value: v, IsReal: true, Pos: tok.Pos}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		p.next()
		if p.cur().Kind != TokLParen {
			return &VarRef{Name: tok.Text, Pos: tok.Pos}, nil
		}
		p.next() // (
		var args []Expr
		for p.cur().Kind != TokRParen {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if arity, ok := Intrinsics[tok.Text]; ok {
			if arity >= 0 && len(args) != arity {
				return nil, fmt.Errorf("%s: intrinsic %s expects %d args, got %d", tok.Pos, tok.Text, arity, len(args))
			}
			if arity == -1 && len(args) < 2 {
				return nil, fmt.Errorf("%s: intrinsic %s expects ≥2 args", tok.Pos, tok.Text)
			}
			return &IntrinsicCall{Name: tok.Text, Args: args, Pos: tok.Pos}, nil
		}
		return &ArrayRef{Name: tok.Text, Idx: args, Pos: tok.Pos}, nil
	default:
		return nil, p.errf("expected expression")
	}
}
