package source

import "testing"

// Formatting variants of the same program: extra blank lines, comment
// lines, different spacing around operators and commas, and mixed
// case-insensitive keywords where the lexer normalizes them.
const fpBase = `
program p
  integer i, n
  parameter (n = 64)
  real a(64), b(64)
  do i = 1, n
    a(i) = a(i) + 2.0 * b(i)
  end do
end
`

const fpReformatted = `
program p


  integer i, n
  parameter (n   =   64)
  real a(64), b(64)
  do i = 1,   n
    a( i ) = a(i)+2.0*b( i )
  end do
end
`

// fpOneStmtOff differs from fpBase in exactly one statement (the
// coefficient 2.0 became 3.0).
const fpOneStmtOff = `
program p
  integer i, n
  parameter (n = 64)
  real a(64), b(64)
  do i = 1, n
    a(i) = a(i) + 3.0 * b(i)
  end do
end
`

func fpMustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestFingerprintIgnoresFormatting(t *testing.T) {
	a := fpMustParse(t, fpBase)
	b := fpMustParse(t, fpReformatted)
	if FingerprintProgram(a) != FingerprintProgram(b) {
		t.Errorf("formatting changed the program fingerprint:\n%v\n%v",
			FingerprintProgram(a), FingerprintProgram(b))
	}
	if FingerprintStmts(a.Body) != FingerprintStmts(b.Body) {
		t.Error("formatting changed the body fingerprint")
	}
	if FingerprintEnv(a) != FingerprintEnv(b) {
		t.Error("formatting changed the env fingerprint")
	}
}

func TestFingerprintPrintRoundTrip(t *testing.T) {
	a := fpMustParse(t, fpBase)
	b := fpMustParse(t, PrintProgram(a))
	if FingerprintProgram(a) != FingerprintProgram(b) {
		t.Error("print/re-parse changed the fingerprint")
	}
}

func TestFingerprintSeesOneStatementChange(t *testing.T) {
	a := fpMustParse(t, fpBase)
	b := fpMustParse(t, fpOneStmtOff)
	if FingerprintProgram(a) == FingerprintProgram(b) {
		t.Error("one-statement difference not reflected in program fingerprint")
	}
	if FingerprintStmt(a.Body[0]) == FingerprintStmt(b.Body[0]) {
		t.Error("one-statement difference not reflected in statement fingerprint")
	}
	// The environments are identical, only the body differs.
	if FingerprintEnv(a) != FingerprintEnv(b) {
		t.Error("identical environments hash differently")
	}
}

func TestFingerprintDistinguishesNodeKinds(t *testing.T) {
	// x vs x(1): a VarRef and an ArrayRef over the same name.
	v := &VarRef{Name: "x"}
	ar := &ArrayRef{Name: "x", Idx: []Expr{&NumLit{Value: 1}}}
	sa := FingerprintStmt(&Assign{LHS: v, RHS: &NumLit{Value: 0}})
	sb := FingerprintStmt(&Assign{LHS: ar, RHS: &NumLit{Value: 0}})
	if sa == sb {
		t.Error("VarRef and ArrayRef hash equal")
	}
	// 2 vs 2.0: integer and real literals with the same value.
	ia := FingerprintStmt(&Assign{LHS: v, RHS: &NumLit{Value: 2}})
	ib := FingerprintStmt(&Assign{LHS: v, RHS: &NumLit{Value: 2, IsReal: true}})
	if ia == ib {
		t.Error("integer and real literals hash equal")
	}
	// A missing step vs an explicit step of 1 are distinct trees.
	la := FingerprintStmt(&DoLoop{Var: "i", Lb: &NumLit{Value: 1}, Ub: v})
	lb := FingerprintStmt(&DoLoop{Var: "i", Lb: &NumLit{Value: 1}, Ub: v, Step: &NumLit{Value: 1}})
	if la == lb {
		t.Error("nil step and explicit step hash equal")
	}
}

func TestFingerprintPositionsExcluded(t *testing.T) {
	a := fpMustParse(t, fpBase)
	// Shift every position by re-parsing with a leading comment block.
	b := fpMustParse(t, "! header comment\n! another line\n"+fpBase)
	if FingerprintProgram(a) != FingerprintProgram(b) {
		t.Error("source positions leaked into the fingerprint")
	}
}

func TestFingerprintEnvFor(t *testing.T) {
	a := fpMustParse(t, fpBase)
	// Same program with an extra, unreferenced declaration (what tiling
	// does when it declares i_t).
	withDecl := fpMustParse(t, `
program p
  integer i, n, i_t
  parameter (n = 64)
  real a(64), b(64)
  do i = 1, n
    a(i) = a(i) + 2.0 * b(i)
  end do
end
`)
	names := map[string]bool{}
	StmtNames(a.Body[0], names)
	if !names["i"] || !names["a"] || !names["b"] || !names["n"] {
		t.Fatalf("StmtNames missed identifiers: %v", names)
	}
	if FingerprintEnvFor(a, names) != FingerprintEnvFor(withDecl, names) {
		t.Error("unreferenced declaration changed the filtered env fingerprint")
	}
	if FingerprintEnv(a) == FingerprintEnv(withDecl) {
		t.Error("full env fingerprint missed the extra declaration")
	}
	// Changing the type of a referenced name must change the key.
	retyped := fpMustParse(t, `
program p
  real i, n
  parameter (n = 64)
  real a(64), b(64)
  do i = 1, n
    a(i) = a(i) + 2.0 * b(i)
  end do
end
`)
	if FingerprintEnvFor(a, names) == FingerprintEnvFor(retyped, names) {
		t.Error("referenced declaration type change not reflected in filtered env fingerprint")
	}
}
