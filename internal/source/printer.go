package source

import (
	"fmt"
	"strings"
)

// PrintProgram renders a program back to F-lite source. The output
// re-parses to an equivalent AST (round-trip property tested), which
// the transformation engine relies on for debugging and the examples
// use to show restructured programs.
func PrintProgram(p *Program) string {
	var b strings.Builder
	if len(p.Params) > 0 {
		fmt.Fprintf(&b, "subroutine %s(%s)\n", p.Name, strings.Join(p.Params, ", "))
	} else {
		fmt.Fprintf(&b, "program %s\n", p.Name)
	}
	for _, d := range p.Decls {
		names := make([]string, len(d.Names))
		for i, n := range d.Names {
			if len(n.Dims) == 0 {
				names[i] = n.Name
				continue
			}
			dims := make([]string, len(n.Dims))
			for j, dim := range n.Dims {
				dims[j] = ExprString(dim)
			}
			names[i] = fmt.Sprintf("%s(%s)", n.Name, strings.Join(dims, ","))
		}
		fmt.Fprintf(&b, "  %s %s\n", d.Type, strings.Join(names, ", "))
	}
	for _, c := range p.Consts {
		fmt.Fprintf(&b, "  parameter (%s = %s)\n", c.Name, ExprString(c.Value))
	}
	for _, d := range p.Dists {
		fmt.Fprintf(&b, "!hpf$ distribute %s(%s)\n", d.Array, strings.Join(d.Pattern, ", "))
	}
	printStmts(&b, p.Body, 1)
	b.WriteString("end\n")
	return b.String()
}

// StmtsString renders a statement list (used as a structural cache key
// by the incremental cost estimator).
func StmtsString(stmts []Stmt) string {
	var b strings.Builder
	printStmts(&b, stmts, 0)
	return b.String()
}

func printStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch x := s.(type) {
		case *Assign:
			fmt.Fprintf(b, "%s%s = %s\n", ind, ExprString(x.LHS), ExprString(x.RHS))
		case *DoLoop:
			if x.Step != nil {
				fmt.Fprintf(b, "%sdo %s = %s, %s, %s\n", ind, x.Var, ExprString(x.Lb), ExprString(x.Ub), ExprString(x.Step))
			} else {
				fmt.Fprintf(b, "%sdo %s = %s, %s\n", ind, x.Var, ExprString(x.Lb), ExprString(x.Ub))
			}
			printStmts(b, x.Body, depth+1)
			fmt.Fprintf(b, "%send do\n", ind)
		case *IfStmt:
			fmt.Fprintf(b, "%sif (%s) then\n", ind, ExprString(x.Cond))
			printStmts(b, x.Then, depth+1)
			if x.Else != nil {
				fmt.Fprintf(b, "%selse\n", ind)
				printStmts(b, x.Else, depth+1)
			}
			fmt.Fprintf(b, "%send if\n", ind)
		case *CallStmt:
			args := make([]string, len(x.Args))
			for i, a := range x.Args {
				args[i] = ExprString(a)
			}
			fmt.Fprintf(b, "%scall %s(%s)\n", ind, x.Name, strings.Join(args, ", "))
		case *ContinueStmt:
			fmt.Fprintf(b, "%scontinue\n", ind)
		case *ReturnStmt:
			fmt.Fprintf(b, "%sreturn\n", ind)
		}
	}
}
