package source

import (
	"strings"
	"testing"
)

const matmulSrc = `
program matmul
  integer n, i, j, k
  real a(100,100), b(100,100), c(100,100)
  parameter (n = 100)
!hpf$ distribute a(block, *)
  do i = 1, n
    do j = 1, n
      c(i,j) = 0.0
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
`

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestParseMatmul(t *testing.T) {
	p := mustParse(t, matmulSrc)
	if p.Name != "matmul" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.Decls) != 2 {
		t.Fatalf("decls = %d", len(p.Decls))
	}
	if p.Decls[0].Type != TypeInteger || len(p.Decls[0].Names) != 4 {
		t.Errorf("integer decl: %+v", p.Decls[0])
	}
	if p.Decls[1].Type != TypeReal || len(p.Decls[1].Names[0].Dims) != 2 {
		t.Errorf("real decl: %+v", p.Decls[1])
	}
	if len(p.Consts) != 1 || p.Consts[0].Name != "n" {
		t.Errorf("consts: %+v", p.Consts)
	}
	if len(p.Dists) != 1 || p.Dists[0].Array != "a" || p.Dists[0].Pattern[0] != "block" || p.Dists[0].Pattern[1] != "*" {
		t.Errorf("dists: %+v", p.Dists[0])
	}
	outer, ok := p.Body[0].(*DoLoop)
	if !ok || outer.Var != "i" {
		t.Fatalf("outer loop: %+v", p.Body[0])
	}
	mid := outer.Body[0].(*DoLoop)
	if len(mid.Body) != 2 {
		t.Fatalf("mid body: %d stmts", len(mid.Body))
	}
	if _, ok := mid.Body[0].(*Assign); !ok {
		t.Error("expected init assignment")
	}
	inner := mid.Body[1].(*DoLoop)
	as := inner.Body[0].(*Assign)
	rhs, ok := as.RHS.(*BinExpr)
	if !ok || rhs.Kind != BinAdd {
		t.Fatalf("rhs: %+v", as.RHS)
	}
	mul, ok := rhs.R.(*BinExpr)
	if !ok || mul.Kind != BinMul {
		t.Fatalf("rhs.R: %+v", rhs.R)
	}
}

func TestParseIfElse(t *testing.T) {
	src := `
program p
  integer i, k, n
  real a(100)
  do i = 1, n
    if (i .le. k) then
      a(i) = 1.0
    else
      a(i) = 2.0
    end if
  end do
end
`
	p := mustParse(t, src)
	loop := p.Body[0].(*DoLoop)
	ifs := loop.Body[0].(*IfStmt)
	cond := ifs.Cond.(*BinExpr)
	if cond.Kind != BinLE {
		t.Errorf("cond kind: %v", cond.Kind)
	}
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Errorf("branches: %d/%d", len(ifs.Then), len(ifs.Else))
	}
}

func TestParseOneLineIf(t *testing.T) {
	src := "program p\n integer i\n real x\n if (i .gt. 0) x = 1.0\nend\n"
	p := mustParse(t, src)
	ifs, ok := p.Body[0].(*IfStmt)
	if !ok || len(ifs.Then) != 1 || ifs.Else != nil {
		t.Fatalf("one-line if: %+v", p.Body[0])
	}
}

func TestParseElseIfChain(t *testing.T) {
	for _, form := range []string{"else if", "elseif"} {
		src := `
program p
  integer i
  real x
  if (i .lt. 0) then
    x = 1.0
  ` + form + ` (i .eq. 0) then
    x = 2.0
  else
    x = 3.0
  end if
end
`
		p := mustParse(t, src)
		ifs := p.Body[0].(*IfStmt)
		nested, ok := ifs.Else[0].(*IfStmt)
		if !ok {
			t.Fatalf("%s: nested = %+v", form, ifs.Else[0])
		}
		if nested.Else == nil {
			t.Errorf("%s: missing final else", form)
		}
	}
}

func TestParseSubroutine(t *testing.T) {
	src := `
subroutine daxpy(n, alpha)
  integer n, i
  real alpha, x(1000), y(1000)
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
  return
end
`
	p := mustParse(t, src)
	if p.Name != "daxpy" || len(p.Params) != 2 {
		t.Errorf("subroutine: %q %v", p.Name, p.Params)
	}
	if _, ok := p.Body[len(p.Body)-1].(*ReturnStmt); !ok {
		t.Error("missing return")
	}
}

func TestParseStepAndPower(t *testing.T) {
	src := "program p\n integer i, n\n real x\n do i = 1, n, 2\n x = x**2 + 2.0**(-i)\n end do\nend\n"
	p := mustParse(t, src)
	loop := p.Body[0].(*DoLoop)
	if loop.Step == nil {
		t.Fatal("step missing")
	}
	as := loop.Body[0].(*Assign)
	add := as.RHS.(*BinExpr)
	pow := add.L.(*BinExpr)
	if pow.Kind != BinPow {
		t.Errorf("expected power: %v", pow.Kind)
	}
}

func TestParseIntrinsics(t *testing.T) {
	src := "program p\n real x, y\n x = sqrt(abs(y)) + min(x, y) + mod(3, 2)\nend\n"
	p := mustParse(t, src)
	as := p.Body[0].(*Assign)
	s := ExprString(as.RHS)
	for _, fn := range []string{"sqrt", "abs", "min", "mod"} {
		if !strings.Contains(s, fn) {
			t.Errorf("missing %s in %q", fn, s)
		}
	}
}

func TestParseIntrinsicArityError(t *testing.T) {
	if _, err := Parse("program p\n real x\n x = sqrt(x, x)\nend\n"); err == nil {
		t.Error("expected arity error")
	}
	if _, err := Parse("program p\n real x\n x = min(x)\nend\n"); err == nil {
		t.Error("expected variadic arity error")
	}
}

func TestParseCall(t *testing.T) {
	src := "program p\n integer n\n real a(10)\n call solve(a, n, 3.5)\nend\n"
	p := mustParse(t, src)
	c := p.Body[0].(*CallStmt)
	if c.Name != "solve" || len(c.Args) != 3 {
		t.Errorf("call: %+v", c)
	}
}

func TestParseContinuation(t *testing.T) {
	src := "program p\n real x, y\n x = y + &\n 2.0\nend\n"
	p := mustParse(t, src)
	as := p.Body[0].(*Assign)
	if _, ok := as.RHS.(*BinExpr); !ok {
		t.Errorf("continuation rhs: %+v", as.RHS)
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	src := "PROGRAM P\n INTEGER I, N\n REAL X\n DO I = 1, N\n X = X + 1.0\n END DO\nEND\n"
	p := mustParse(t, src)
	if p.Name != "p" {
		t.Errorf("name = %q", p.Name)
	}
	if _, ok := p.Body[0].(*DoLoop); !ok {
		t.Error("DO not parsed")
	}
}

func TestParseRelationalSymbols(t *testing.T) {
	for sym, kind := range map[string]BinKind{
		"<": BinLT, "<=": BinLE, ">": BinGT, ">=": BinGE, "==": BinEQ, "/=": BinNE,
	} {
		src := "program p\n integer i\n real x\n if (i " + sym + " 3) x = 1.0\nend\n"
		p := mustParse(t, src)
		ifs := p.Body[0].(*IfStmt)
		if ifs.Cond.(*BinExpr).Kind != kind {
			t.Errorf("%s parsed as %v", sym, ifs.Cond.(*BinExpr).Kind)
		}
	}
}

func TestParseLogicalOps(t *testing.T) {
	src := "program p\n integer i, n\n real x\n if (i .gt. 0 .and. i .lt. n .or. .not. (i .eq. 5)) x = 1.0\nend\n"
	p := mustParse(t, src)
	ifs := p.Body[0].(*IfStmt)
	or := ifs.Cond.(*BinExpr)
	if or.Kind != BinOr {
		t.Fatalf("top = %v", or.Kind)
	}
	and := or.L.(*BinExpr)
	if and.Kind != BinAnd {
		t.Errorf("left = %v", and.Kind)
	}
	not := or.R.(*UnExpr)
	if not.Neg {
		t.Error(".not. parsed as negation")
	}
}

func TestParseRealForms(t *testing.T) {
	src := "program p\n real x\n x = 1.5 + 1e3 + 2.5d-2 + .25 + 3.\nend\n"
	p := mustParse(t, src)
	s := ExprString(p.Body[0].(*Assign).RHS)
	if !strings.Contains(s, "0.025") && !strings.Contains(s, "2.5e-02") {
		t.Logf("rhs: %s", s) // representation detail, only sanity-check parse
	}
}

func TestParseDotDisambiguation(t *testing.T) {
	// "1.lt.2" must lex as 1 .lt. 2, not real 1. followed by garbage.
	src := "program p\n real x\n if (1.lt.2) x = 1.0\nend\n"
	p := mustParse(t, src)
	ifs := p.Body[0].(*IfStmt)
	if ifs.Cond.(*BinExpr).Kind != BinLT {
		t.Error("dot operator disambiguation failed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                     // empty
		"program\n end\n",                      // missing name
		"program p\n do i = 1\n end do\nend\n", // missing ub
		"program p\n x = \nend\n",              // missing rhs
		"program p\n do i = 1, 5\nend\n",       // unterminated do
		"program p\n if (x) then\nend\n",       // unterminated if
		"program p\n 3 = x\nend\n",             // bad lhs
		"program p\n x = y .qq. z\nend\n",      // unknown dotted op
		"program p\n x = $\nend\n",             // bad char
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseBadDirective(t *testing.T) {
	if _, err := Parse("program p\n!hpf$ distribute a(weird)\n real x\n x = 1.0\nend\n"); err == nil {
		t.Error("expected bad-pattern error")
	}
	// Unknown directives are ignored.
	p := mustParse(t, "program p\n!hpf$ independent\n real x\n x = 1.0\nend\n")
	if len(p.Dists) != 0 {
		t.Error("unknown directive produced a distribution")
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{matmulSrc,
		`
subroutine jacobi(n)
  integer n, i, j
  real a(512,512), b(512,512)
  do j = 2, n - 1
    do i = 2, n - 1
      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
    end do
  end do
end
`,
	}
	for _, src := range srcs {
		p1 := mustParse(t, src)
		out := PrintProgram(p1)
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse failed: %v\nprinted:\n%s", err, out)
		}
		if PrintProgram(p2) != out {
			t.Errorf("round trip not stable:\n%s\nvs\n%s", out, PrintProgram(p2))
		}
	}
}

func TestCloneProgramIndependent(t *testing.T) {
	p := mustParse(t, matmulSrc)
	c := CloneProgram(p)
	// Mutate the clone's inner loop bound.
	loop := c.Body[0].(*DoLoop)
	loop.Ub = &NumLit{Value: 5}
	if p.Body[0].(*DoLoop).Ub.(*VarRef) == nil {
		t.Error("original mutated")
	}
	if PrintProgram(p) == PrintProgram(c) {
		t.Error("clone mutation affected original")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("x = 1\ny = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token pos: %v", toks[0].Pos)
	}
	// Find the 'y' token.
	for _, tok := range toks {
		if tok.Kind == TokIdent && tok.Text == "y" {
			if tok.Pos.Line != 2 {
				t.Errorf("y pos: %v", tok.Pos)
			}
			return
		}
	}
	t.Error("y not found")
}
