// Package source implements the F-lite front end: a lexer, parser and
// AST for the Fortran-90-like kernel language the predictor consumes.
// F-lite covers the constructs the paper's framework prices: DO loops
// with symbolic bounds, IF/THEN/ELSE, multi-dimensional REAL/INTEGER
// arrays, arithmetic with exponentiation, intrinsic calls, CALL
// statements, PARAMETER constants, and `!hpf$ distribute` directives
// for the communication cost model.
package source

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

const (
	TokEOF TokKind = iota
	TokNewline
	TokIdent
	TokInt
	TokReal
	TokString

	// Punctuation / operators.
	TokLParen
	TokRParen
	TokComma
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPower // **
	TokColon

	// Relational (.lt. or < forms normalize to these).
	TokLT
	TokLE
	TokGT
	TokGE
	TokEQ
	TokNE

	// Logical.
	TokAnd
	TokOr
	TokNot

	// Keywords.
	TokProgram
	TokSubroutine
	TokFunction
	TokEnd
	TokDo
	TokEndDo
	TokIf
	TokThen
	TokElse
	TokElseIf
	TokEndIf
	TokCall
	TokInteger
	TokRealKw
	TokParameter
	TokReturn
	TokContinue

	// Directive: !hpf$ … (lexed as one token carrying the text).
	TokDirective
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokNewline: "newline", TokIdent: "identifier",
	TokInt: "integer literal", TokReal: "real literal", TokString: "string",
	TokLParen: "(", TokRParen: ")", TokComma: ",", TokAssign: "=",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/",
	TokPower: "**", TokColon: ":",
	TokLT: ".lt.", TokLE: ".le.", TokGT: ".gt.", TokGE: ".ge.",
	TokEQ: ".eq.", TokNE: ".ne.",
	TokAnd: ".and.", TokOr: ".or.", TokNot: ".not.",
	TokProgram: "program", TokSubroutine: "subroutine", TokFunction: "function",
	TokEnd: "end", TokDo: "do", TokEndDo: "enddo",
	TokIf: "if", TokThen: "then", TokElse: "else", TokElseIf: "elseif",
	TokEndIf: "endif", TokCall: "call",
	TokInteger: "integer", TokRealKw: "real", TokParameter: "parameter",
	TokReturn: "return", TokContinue: "continue",
	TokDirective: "directive",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

// Pos locates a token in the source.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical unit.
type Token struct {
	Kind TokKind
	Text string // identifier name (lower-cased), literal text, directive body
	Pos  Pos
}

var keywords = map[string]TokKind{
	"program": TokProgram, "subroutine": TokSubroutine, "function": TokFunction,
	"end": TokEnd, "do": TokDo, "enddo": TokEndDo,
	"if": TokIf, "then": TokThen, "else": TokElse,
	"elseif": TokElseIf, "endif": TokEndIf,
	"call": TokCall, "integer": TokInteger, "real": TokRealKw,
	"parameter": TokParameter, "return": TokReturn, "continue": TokContinue,
}

var dotOps = map[string]TokKind{
	"lt": TokLT, "le": TokLE, "gt": TokGT, "ge": TokGE,
	"eq": TokEQ, "ne": TokNE, "and": TokAnd, "or": TokOr, "not": TokNot,
}
