package source

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// The parser must never panic, whatever bytes it is fed: errors only.
func TestQuickParseNeverPanics(t *testing.T) {
	base := `
program p
  integer i, n
  parameter (n = 10)
  real a(10), x
  do i = 1, n
    if (i .le. 5) then
      a(i) = x * 2.0 + real(i)
    else
      a(i) = sqrt(x)
    end if
  end do
end
`
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parser panicked: %v", r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		b := []byte(base)
		// Mutate a handful of random bytes.
		for k := 0; k < 1+rng.Intn(8); k++ {
			pos := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0:
				b[pos] = byte(rng.Intn(128))
			case 1: // delete
				b = append(b[:pos], b[pos+1:]...)
			default: // duplicate
				b = append(b[:pos], append([]byte{b[pos]}, b[pos:]...)...)
			}
			if len(b) == 0 {
				b = []byte("x")
			}
		}
		_, _ = Parse(string(b)) // error or success, never panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Random splices of token-ish fragments must not panic either.
func TestParseFragmentSoup(t *testing.T) {
	frags := []string{
		"do i = 1, n", "end do", "if (", ") then", "else", "end if",
		"a(i)", "= 1.0", "**", ".le.", "call f(", "program p", "end",
		"integer", "real", "parameter (", "1e9", ".5", "&\n", "!hpf$ distribute a(block)",
		"mod(i, 2)", ";", "-", "x", "\n",
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			b.WriteString(frags[rng.Intn(len(frags))])
			b.WriteByte(' ')
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", b.String(), r)
				}
			}()
			_, _ = Parse(b.String())
		}()
	}
}

// Every kernel-shaped program that parses must round-trip through the
// printer to an equivalent AST.
func TestQuickPrintRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() string {
		var b strings.Builder
		b.WriteString("program g\n integer i, j, n\n parameter (n = 16)\n real a(16,16), x\n")
		stmts := 1 + rng.Intn(4)
		for s := 0; s < stmts; s++ {
			switch rng.Intn(3) {
			case 0:
				b.WriteString(" x = x * 2.0 + 1.0\n")
			case 1:
				b.WriteString(" do i = 1, n\n  a(i,1) = x + real(i)\n end do\n")
			default:
				b.WriteString(" if (x .gt. 0.0) then\n  x = x - 1.0\n else\n  x = x + 1.0\n end if\n")
			}
		}
		b.WriteString("end\n")
		return b.String()
	}
	for trial := 0; trial < 100; trial++ {
		src := mk()
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("generated program failed to parse: %v\n%s", err, src)
		}
		printed := PrintProgram(p1)
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed program failed to re-parse: %v\n%s", err, printed)
		}
		if PrintProgram(p2) != printed {
			t.Fatalf("round trip unstable:\n%s\nvs\n%s", printed, PrintProgram(p2))
		}
	}
}
