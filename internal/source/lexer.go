package source

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer turns F-lite source text into tokens. Keywords and identifiers
// are case-insensitive and normalized to lower case. `!hpf$` comments
// become TokDirective tokens; other `!` comments are skipped.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex returns all tokens including TokNewline separators, ending with
// TokEOF.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *Lexer) errf(format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", lx.line, lx.col, fmt.Sprintf(format, args...))
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) here() Pos { return Pos{lx.line, lx.col} }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	for {
		// Skip spaces, tabs, carriage returns and line continuations
		// ("&" at end of line joins lines).
		for {
			c := lx.peek()
			if c == ' ' || c == '\t' || c == '\r' {
				lx.advance()
				continue
			}
			if c == '&' {
				// Continuation: consume through the newline.
				save := lx.pos
				lx.advance()
				for lx.peek() == ' ' || lx.peek() == '\t' || lx.peek() == '\r' {
					lx.advance()
				}
				if lx.peek() == '\n' {
					lx.advance()
					continue
				}
				lx.pos = save // lone '&' is an error below
			}
			break
		}
		pos := lx.here()
		c := lx.peek()
		switch {
		case c == 0:
			return Token{TokEOF, "", pos}, nil
		case c == '\n':
			lx.advance()
			return Token{TokNewline, "\n", pos}, nil
		case c == ';':
			lx.advance()
			return Token{TokNewline, ";", pos}, nil
		case c == '!':
			// Comment or directive.
			start := lx.pos
			for lx.peek() != '\n' && lx.peek() != 0 {
				lx.advance()
			}
			text := lx.src[start:lx.pos]
			lower := strings.ToLower(text)
			if strings.HasPrefix(lower, "!hpf$") {
				return Token{TokDirective, strings.TrimSpace(text[len("!hpf$"):]), pos}, nil
			}
			continue // plain comment: loop for the next token
		case isDigit(c) || (c == '.' && isDigit(lx.peek2())):
			return lx.lexNumber(pos)
		case c == '.':
			return lx.lexDotOp(pos)
		case isIdentStart(c):
			return lx.lexIdent(pos)
		case c == '\'' || c == '"':
			return lx.lexString(pos, c)
		default:
			return lx.lexOperator(pos)
		}
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return c == '_' || isDigit(c) || unicode.IsLetter(rune(c)) }

func (lx *Lexer) lexNumber(pos Pos) (Token, error) {
	start := lx.pos
	isReal := false
	for isDigit(lx.peek()) {
		lx.advance()
	}
	if lx.peek() == '.' && !isDotOpAhead(lx.src[lx.pos:]) {
		isReal = true
		lx.advance()
		for isDigit(lx.peek()) {
			lx.advance()
		}
	}
	if c := lx.peek(); c == 'e' || c == 'E' || c == 'd' || c == 'D' {
		// Exponent must be followed by digits or sign+digits.
		save := lx.pos
		lx.advance()
		if lx.peek() == '+' || lx.peek() == '-' {
			lx.advance()
		}
		if isDigit(lx.peek()) {
			isReal = true
			for isDigit(lx.peek()) {
				lx.advance()
			}
		} else {
			lx.pos = save
		}
	}
	text := lx.src[start:lx.pos]
	kind := TokInt
	if isReal {
		kind = TokReal
		text = strings.Map(func(r rune) rune {
			if r == 'd' || r == 'D' {
				return 'e'
			}
			return r
		}, text)
	}
	return Token{kind, text, pos}, nil
}

// isDotOpAhead reports whether s begins with a dotted operator such as
// ".lt." — disambiguates "1.lt.2" from "1." (real).
func isDotOpAhead(s string) bool {
	if len(s) < 3 || s[0] != '.' {
		return false
	}
	i := 1
	for i < len(s) && s[i] != '.' {
		if !unicode.IsLetter(rune(s[i])) {
			return false
		}
		i++
	}
	if i >= len(s) || i == 1 {
		return false
	}
	_, ok := dotOps[strings.ToLower(s[1:i])]
	return ok
}

func (lx *Lexer) lexDotOp(pos Pos) (Token, error) {
	// .op.
	lx.advance() // '.'
	start := lx.pos
	for unicode.IsLetter(rune(lx.peek())) {
		lx.advance()
	}
	name := strings.ToLower(lx.src[start:lx.pos])
	if lx.peek() != '.' {
		return Token{}, lx.errf("malformed dotted operator .%s", name)
	}
	lx.advance()
	kind, ok := dotOps[name]
	if !ok {
		return Token{}, lx.errf("unknown operator .%s.", name)
	}
	return Token{kind, "." + name + ".", pos}, nil
}

func (lx *Lexer) lexIdent(pos Pos) (Token, error) {
	start := lx.pos
	for isIdentPart(lx.peek()) {
		lx.advance()
	}
	name := strings.ToLower(lx.src[start:lx.pos])
	if k, ok := keywords[name]; ok {
		return Token{k, name, pos}, nil
	}
	return Token{TokIdent, name, pos}, nil
}

func (lx *Lexer) lexString(pos Pos, quote byte) (Token, error) {
	lx.advance()
	start := lx.pos
	for lx.peek() != quote {
		if lx.peek() == 0 || lx.peek() == '\n' {
			return Token{}, lx.errf("unterminated string")
		}
		lx.advance()
	}
	text := lx.src[start:lx.pos]
	lx.advance()
	return Token{TokString, text, pos}, nil
}

func (lx *Lexer) lexOperator(pos Pos) (Token, error) {
	c := lx.advance()
	switch c {
	case '(':
		return Token{TokLParen, "(", pos}, nil
	case ')':
		return Token{TokRParen, ")", pos}, nil
	case ',':
		return Token{TokComma, ",", pos}, nil
	case ':':
		return Token{TokColon, ":", pos}, nil
	case '+':
		return Token{TokPlus, "+", pos}, nil
	case '-':
		return Token{TokMinus, "-", pos}, nil
	case '*':
		if lx.peek() == '*' {
			lx.advance()
			return Token{TokPower, "**", pos}, nil
		}
		return Token{TokStar, "*", pos}, nil
	case '/':
		if lx.peek() == '=' {
			lx.advance()
			return Token{TokNE, "/=", pos}, nil
		}
		return Token{TokSlash, "/", pos}, nil
	case '=':
		if lx.peek() == '=' {
			lx.advance()
			return Token{TokEQ, "==", pos}, nil
		}
		return Token{TokAssign, "=", pos}, nil
	case '<':
		if lx.peek() == '=' {
			lx.advance()
			return Token{TokLE, "<=", pos}, nil
		}
		return Token{TokLT, "<", pos}, nil
	case '>':
		if lx.peek() == '=' {
			lx.advance()
			return Token{TokGE, ">=", pos}, nil
		}
		return Token{TokGT, ">", pos}, nil
	default:
		return Token{}, fmt.Errorf("%s: unexpected character %q", pos, string(rune(c)))
	}
}
