package source

import (
	"fmt"
	"math"
)

// Fingerprint is a 128-bit structural hash of an AST fragment. Two
// fragments that parse to the same tree — regardless of the whitespace,
// comments, or statement formatting of the text they came from — have
// equal fingerprints; fragments differing in any operator, operand,
// bound, or statement hash differently (up to hash collisions, which at
// 128 bits are negligible for the cache and dedup uses here). Source
// positions are deliberately excluded, so re-printing and re-parsing a
// program leaves every fingerprint unchanged.
//
// Fingerprints are the identity the incremental re-pricing layer is
// built on: the transformation search deduplicates candidate programs
// by FingerprintProgram instead of printed source, and the nest-level
// cost cache (package aggregate) keys cached polynomials by the
// fingerprint of a loop nest combined with its pricing context.
type Fingerprint struct {
	Hi, Lo uint64
}

// IsZero reports whether f is the zero fingerprint (no data hashed —
// never produced by the hashers below, which mix non-zero offsets).
func (f Fingerprint) IsZero() bool { return f.Hi == 0 && f.Lo == 0 }

// String renders the fingerprint as 32 hex digits.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

// Mix folds another fingerprint into f, producing a composite key.
func (f Fingerprint) Mix(g Fingerprint) Fingerprint {
	w := fpWriter{f}
	w.u64(g.Hi)
	w.u64(g.Lo)
	return w.f
}

// MixString folds a string into f.
func (f Fingerprint) MixString(s string) Fingerprint {
	w := fpWriter{f}
	w.str(s)
	return w.f
}

// MixUint64 folds an integer into f.
func (f Fingerprint) MixUint64(v uint64) Fingerprint {
	w := fpWriter{f}
	w.u64(v)
	return w.f
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// fpOffsetHi seeds the second lane so the two 64-bit streams
	// decorrelate (the golden-ratio constant of splitmix64).
	fpOffsetHi = 0x9e3779b97f4a7c15
)

// fpWriter is a two-lane FNV-1a stream over a canonical byte encoding
// of AST nodes. Both lanes see every byte; the high lane perturbs each
// byte so the lanes disagree on permuted inputs.
type fpWriter struct {
	f Fingerprint
}

func newFPWriter() fpWriter {
	return fpWriter{Fingerprint{Hi: fpOffsetHi, Lo: fnvOffset64}}
}

func (w *fpWriter) byte(c byte) {
	w.f.Lo = (w.f.Lo ^ uint64(c)) * fnvPrime64
	w.f.Hi = (w.f.Hi ^ (uint64(c) + 0x63)) * fnvPrime64
}

func (w *fpWriter) u64(v uint64) {
	for i := 0; i < 8; i++ {
		w.byte(byte(v >> (8 * i)))
	}
}

func (w *fpWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

// str writes a length-prefixed string, so "ab"+"c" and "a"+"bc" hash
// differently.
func (w *fpWriter) str(s string) {
	w.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		w.byte(s[i])
	}
}

// Node tags. Every node kind gets a distinct byte so trees with
// different shapes cannot collide by concatenation.
const (
	fpTagNil byte = iota
	fpTagNumLit
	fpTagVarRef
	fpTagArrayRef
	fpTagIntrinsic
	fpTagUnExpr
	fpTagBinExpr
	fpTagAssign
	fpTagDoLoop
	fpTagIfStmt
	fpTagCallStmt
	fpTagContinue
	fpTagReturn
	fpTagDecl
	fpTagConst
	fpTagDist
	fpTagProgram
	fpTagStmts
	fpTagEnv
)

func (w *fpWriter) expr(e Expr) {
	switch x := e.(type) {
	case nil:
		w.byte(fpTagNil)
	case *NumLit:
		w.byte(fpTagNumLit)
		w.f64(x.Value)
		if x.IsReal {
			w.byte(1)
		} else {
			w.byte(0)
		}
	case *VarRef:
		w.byte(fpTagVarRef)
		w.str(x.Name)
	case *ArrayRef:
		w.byte(fpTagArrayRef)
		w.str(x.Name)
		w.u64(uint64(len(x.Idx)))
		for _, ix := range x.Idx {
			w.expr(ix)
		}
	case *IntrinsicCall:
		w.byte(fpTagIntrinsic)
		w.str(x.Name)
		w.u64(uint64(len(x.Args)))
		for _, a := range x.Args {
			w.expr(a)
		}
	case *UnExpr:
		w.byte(fpTagUnExpr)
		if x.Neg {
			w.byte(1)
		} else {
			w.byte(0)
		}
		w.expr(x.X)
	case *BinExpr:
		w.byte(fpTagBinExpr)
		w.byte(byte(x.Kind))
		w.expr(x.L)
		w.expr(x.R)
	default:
		w.byte(0xff)
	}
}

func (w *fpWriter) stmt(s Stmt) {
	switch x := s.(type) {
	case *Assign:
		w.byte(fpTagAssign)
		w.expr(x.LHS)
		w.expr(x.RHS)
	case *DoLoop:
		w.byte(fpTagDoLoop)
		w.str(x.Var)
		w.expr(x.Lb)
		w.expr(x.Ub)
		w.expr(x.Step) // nil hashes as fpTagNil
		w.stmts(x.Body)
	case *IfStmt:
		w.byte(fpTagIfStmt)
		w.expr(x.Cond)
		w.stmts(x.Then)
		if x.Else == nil {
			w.byte(0)
		} else {
			w.byte(1)
			w.stmts(x.Else)
		}
	case *CallStmt:
		w.byte(fpTagCallStmt)
		w.str(x.Name)
		w.u64(uint64(len(x.Args)))
		for _, a := range x.Args {
			w.expr(a)
		}
	case *ContinueStmt:
		w.byte(fpTagContinue)
	case *ReturnStmt:
		w.byte(fpTagReturn)
	default:
		w.byte(0xfe)
	}
}

func (w *fpWriter) stmts(list []Stmt) {
	w.byte(fpTagStmts)
	w.u64(uint64(len(list)))
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *fpWriter) decl(d *Decl) {
	w.byte(fpTagDecl)
	w.byte(byte(d.Type))
	w.u64(uint64(len(d.Names)))
	for _, n := range d.Names {
		w.str(n.Name)
		w.u64(uint64(len(n.Dims)))
		for _, dim := range n.Dims {
			w.expr(dim)
		}
	}
}

func (w *fpWriter) declName(t Type, n *DeclName) {
	w.byte(fpTagDecl)
	w.byte(byte(t))
	w.str(n.Name)
	w.u64(uint64(len(n.Dims)))
	for _, dim := range n.Dims {
		w.expr(dim)
	}
}

func (w *fpWriter) konst(c *Const) {
	w.byte(fpTagConst)
	w.str(c.Name)
	w.expr(c.Value)
}

func (w *fpWriter) dist(d *Distribute) {
	w.byte(fpTagDist)
	w.str(d.Array)
	w.u64(uint64(len(d.Pattern)))
	for _, p := range d.Pattern {
		w.str(p)
	}
}

// FingerprintStmt hashes one statement subtree.
func FingerprintStmt(s Stmt) Fingerprint {
	w := newFPWriter()
	w.stmt(s)
	return w.f
}

// FingerprintStmts hashes a statement list.
func FingerprintStmts(list []Stmt) Fingerprint {
	w := newFPWriter()
	w.stmts(list)
	return w.f
}

// FingerprintProgram hashes a whole program — name, parameters,
// declarations, constants, distribution directives, and body. It is
// the fingerprint equivalent of keying by PrintProgram: two programs
// hash equal iff they are the same tree.
func FingerprintProgram(p *Program) Fingerprint {
	w := newFPWriter()
	w.byte(fpTagProgram)
	w.str(p.Name)
	w.u64(uint64(len(p.Params)))
	for _, s := range p.Params {
		w.str(s)
	}
	w.u64(uint64(len(p.Decls)))
	for _, d := range p.Decls {
		w.decl(d)
	}
	w.u64(uint64(len(p.Consts)))
	for _, c := range p.Consts {
		w.konst(c)
	}
	w.u64(uint64(len(p.Dists)))
	for _, d := range p.Dists {
		w.dist(d)
	}
	w.stmts(p.Body)
	return w.f
}

// FingerprintEnv hashes the pricing environment of a program — its
// parameters, declarations, constants, and distribution directives,
// but not its body or name. Cost-cache entries that depend on variable
// types, array shapes, and parameter constants key on this (or on the
// filtered variant below) so entries cannot leak between programs with
// conflicting declarations.
func FingerprintEnv(p *Program) Fingerprint {
	w := newFPWriter()
	w.byte(fpTagEnv)
	w.u64(uint64(len(p.Params)))
	for _, s := range p.Params {
		w.str(s)
	}
	for _, d := range p.Decls {
		w.decl(d)
	}
	for _, c := range p.Consts {
		w.konst(c)
	}
	for _, d := range p.Dists {
		w.dist(d)
	}
	return w.f
}

// FingerprintEnvFor hashes the part of the pricing environment visible
// to a fragment referencing the given names: every parameter and
// constant (constants fold transitively, so all are kept), plus only
// the declarations and distribution directives of referenced names.
// This makes the environment key of an unchanged loop nest survive
// moves that only extend the declaration list (e.g. tiling declaring a
// fresh control variable the nest never mentions).
func FingerprintEnvFor(p *Program, names map[string]bool) Fingerprint {
	w := newFPWriter()
	w.byte(fpTagEnv)
	w.u64(uint64(len(p.Params)))
	for _, s := range p.Params {
		w.str(s)
	}
	for _, d := range p.Decls {
		for _, n := range d.Names {
			if names[n.Name] {
				w.declName(d.Type, n)
			}
		}
	}
	for _, c := range p.Consts {
		w.konst(c)
	}
	for _, d := range p.Dists {
		if names[d.Array] {
			w.dist(d)
		}
	}
	return w.f
}

// StmtNames collects every identifier referenced in a statement
// subtree — scalar and array names, loop variables, and call targets —
// into out. The incremental re-pricing layer uses it to restrict a
// nest's cache key to the loop variables and declarations the nest can
// actually observe.
func StmtNames(s Stmt, out map[string]bool) {
	switch x := s.(type) {
	case *Assign:
		ExprNames(x.LHS, out)
		ExprNames(x.RHS, out)
	case *DoLoop:
		out[x.Var] = true
		ExprNames(x.Lb, out)
		ExprNames(x.Ub, out)
		ExprNames(x.Step, out)
		for _, b := range x.Body {
			StmtNames(b, out)
		}
	case *IfStmt:
		ExprNames(x.Cond, out)
		for _, b := range x.Then {
			StmtNames(b, out)
		}
		for _, b := range x.Else {
			StmtNames(b, out)
		}
	case *CallStmt:
		out[x.Name] = true
		for _, a := range x.Args {
			ExprNames(a, out)
		}
	}
}

// ExprNames collects every identifier referenced in an expression tree
// into out. A nil expression is a no-op.
func ExprNames(e Expr, out map[string]bool) {
	switch x := e.(type) {
	case *VarRef:
		out[x.Name] = true
	case *ArrayRef:
		out[x.Name] = true
		for _, ix := range x.Idx {
			ExprNames(ix, out)
		}
	case *BinExpr:
		ExprNames(x.L, out)
		ExprNames(x.R, out)
	case *UnExpr:
		ExprNames(x.X, out)
	case *IntrinsicCall:
		for _, a := range x.Args {
			ExprNames(a, out)
		}
	}
}
