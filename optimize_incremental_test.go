package perfpredict

import (
	"testing"

	"perfpredict/internal/kernels"
	"perfpredict/internal/machine"
	"perfpredict/internal/source"
	"perfpredict/internal/xform"
)

func countLoops(list []source.Stmt) int {
	n := 0
	for _, s := range list {
		switch x := s.(type) {
		case *source.DoLoop:
			n += 1 + countLoops(x.Body)
		case *source.IfStmt:
			n += countLoops(x.Then) + countLoops(x.Else)
		}
	}
	return n
}

// TestOptimizeRepricingGuard is the regression guard for incremental
// re-pricing: on a Figure 7 program, Optimize must perform no more
// nest re-pricings than (loop-statement-count + 1) per expanded state,
// where loops are counted on the optimized variant (the largest shape
// the search explores — unrolling adds remainder loops). For f2 the
// incremental search needs ~2.3 re-pricings per state against a bound
// of 3, while a cache regression to full re-pricing (~4.7/state)
// trips it.
func TestOptimizeRepricingGuard(t *testing.T) {
	k, err := kernels.Get("f2")
	if err != nil {
		t.Fatal(err)
	}
	if !k.Figure7 {
		t.Fatalf("f2 is no longer in the Figure 7 set")
	}
	res, err := Optimize(k.Src, POWER1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	best, err := source.Parse(res.Source)
	if err != nil {
		t.Fatal(err)
	}
	loops := countLoops(best.Body)
	bound := res.Explored * (loops + 1)
	if res.NestsRepriced > bound {
		t.Errorf("Optimize re-priced %d nests over %d expanded states; bound is %d (= states × (loops %d + 1))",
			res.NestsRepriced, res.Explored, bound, loops)
	}
	if res.NestCacheHits == 0 {
		t.Error("Optimize never hit the nest cache")
	}
	if res.SegCacheHits == 0 {
		t.Error("Optimize never hit the segment cache")
	}
}

// TestOptimizeTetrisReduction pins the headline acceptance number: on
// the figure programs, the nest cache must cut tetris invocations at
// least 3× versus cache-less search, with identical outcomes.
func TestOptimizeTetrisReduction(t *testing.T) {
	for _, kn := range []string{"f2", "f6", "matmul"} {
		k, err := kernels.Get(kn)
		if err != nil {
			t.Fatal(err)
		}
		prog, _, err := k.Parse()
		if err != nil {
			t.Fatal(err)
		}
		run := func(disable bool) xform.SearchResult {
			res, err := xform.Search(prog, xform.SearchOptions{
				Machine:          machine.NewPOWER1(),
				DisableNestCache: disable,
			})
			if err != nil {
				t.Fatalf("%s disable=%v: %v", kn, disable, err)
			}
			return res
		}
		full := run(true)
		inc := run(false)
		if inc.BestCost != full.BestCost || source.PrintProgram(inc.Best) != source.PrintProgram(full.Best) {
			t.Errorf("%s: incremental search changed the outcome", kn)
		}
		if full.TetrisCalls < 3*inc.TetrisCalls {
			t.Errorf("%s: tetris reduction below 3x: %d full vs %d incremental",
				kn, full.TetrisCalls, inc.TetrisCalls)
		}
	}
}
