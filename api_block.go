package perfpredict

import (
	"fmt"

	"perfpredict/internal/lower"
	"perfpredict/internal/pipesim"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/tetris"
)

// BlockReport is a straight-line cost analysis of a program's
// innermost basic block — the Figure 7 experiment's unit of
// comparison.
type BlockReport struct {
	// Instructions is the number of basic operations after back-end
	// imitation.
	Instructions int
	// Predicted is the Tetris-model cost of one block execution.
	Predicted int
	// PredictedPerIter is the steady-state per-iteration cost when the
	// block repeats (overlapped iterations).
	PredictedPerIter float64
	// Reference is the cycle count of the list-scheduled block on the
	// in-order reference pipeline (the xlf-listing substitute).
	Reference int64
	// Baseline is the conventional operation-count estimate: the sum
	// of per-operation latencies, ignoring all overlap — the model the
	// paper says "may be off by a factor of ten or more".
	Baseline int64
	// CriticalUnit is the busiest functional unit and its utilization.
	CriticalUnit string
	Utilization  float64
}

// ErrorPct returns the signed prediction error versus the reference in
// percent.
func (r BlockReport) ErrorPct() float64 {
	if r.Reference == 0 {
		return 0
	}
	return 100 * (float64(r.Predicted) - float64(r.Reference)) / float64(r.Reference)
}

// BaselineFactor returns Baseline / Reference: how far off the
// conventional model is.
func (r BlockReport) BaselineFactor() float64 {
	if r.Reference == 0 {
		return 0
	}
	return float64(r.Baseline) / float64(r.Reference)
}

// AnalyzeInnermostBlock lowers the innermost loop body of the program
// and prices it three ways: the Tetris prediction, the reference
// pipeline simulation, and the operation-count baseline.
func AnalyzeInnermostBlock(src string, target *Target) (BlockReport, error) {
	return analyzeInnermostBlock(src, target, lower.DefaultOptions(), tetris.Options{})
}

// AnalyzeInnermostBlockWithOptions exposes the back-end imitation and
// placement knobs for ablation studies.
func AnalyzeInnermostBlockWithOptions(src string, target *Target, lopt lower.Options, topt tetris.Options) (BlockReport, error) {
	return analyzeInnermostBlock(src, target, lopt, topt)
}

func analyzeInnermostBlock(src string, target *Target, lopt lower.Options, topt tetris.Options) (BlockReport, error) {
	prog, err := source.Parse(src)
	if err != nil {
		return BlockReport{}, err
	}
	tbl, err := sem.Analyze(prog)
	if err != nil {
		return BlockReport{}, err
	}
	body, loopVars, ok := innermostBlock(prog.Body, nil)
	if !ok {
		return BlockReport{}, fmt.Errorf("perfpredict: no innermost straight-line block found")
	}
	tr := lower.New(tbl, target, lopt)
	lw, err := tr.Body(body, loopVars)
	if err != nil {
		return BlockReport{}, err
	}
	block := lw.Body
	rep := BlockReport{Instructions: len(block.Instrs)}

	pred, err := tetris.Estimate(target, block, topt)
	if err != nil {
		return BlockReport{}, err
	}
	rep.Predicted = pred.Cost
	unit, util := pred.Shape.CriticalUnit()
	rep.CriticalUnit, rep.Utilization = string(unit), util

	per, _, err := tetris.SteadyState(target, block, topt, 4)
	if err != nil {
		return BlockReport{}, err
	}
	rep.PredictedPerIter = per

	sim, err := pipesim.RunScheduled(target, block)
	if err != nil {
		return BlockReport{}, err
	}
	rep.Reference = sim.Cycles

	for _, in := range block.Instrs {
		rep.Baseline += int64(target.Latency(in.Op))
	}
	return rep, nil
}

// innermostBlock returns the deepest straight-line loop body,
// preferring the most deeply nested loop.
func innermostBlock(stmts []source.Stmt, vars []string) ([]source.Stmt, []string, bool) {
	var bestBody []source.Stmt
	var bestVars []string
	bestDepth := -1
	var walk func(list []source.Stmt, vs []string)
	walk = func(list []source.Stmt, vs []string) {
		for _, s := range list {
			switch x := s.(type) {
			case *source.DoLoop:
				inner := append(append([]string{}, vs...), x.Var)
				if straightOnly(x.Body) {
					if len(inner) > bestDepth {
						bestDepth = len(inner)
						bestBody = x.Body
						bestVars = inner
					}
					continue
				}
				walk(x.Body, inner)
			case *source.IfStmt:
				walk(x.Then, vs)
				walk(x.Else, vs)
			}
		}
	}
	walk(stmts, vars)
	if bestDepth < 0 {
		// No loops: the whole body, if straight-line.
		if straightOnly(stmts) && len(stmts) > 0 {
			return stmts, nil, true
		}
		return nil, nil, false
	}
	return bestBody, bestVars, true
}

func straightOnly(list []source.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	for _, s := range list {
		switch s.(type) {
		case *source.Assign, *source.CallStmt, *source.ContinueStmt:
		default:
			return false
		}
	}
	return true
}

// CountOps exposes the operation histogram of the innermost block (for
// diagnostics and the examples).
func CountOps(src string, target *Target) (map[string]int, error) {
	prog, err := source.Parse(src)
	if err != nil {
		return nil, err
	}
	tbl, err := sem.Analyze(prog)
	if err != nil {
		return nil, err
	}
	body, loopVars, ok := innermostBlock(prog.Body, nil)
	if !ok {
		return nil, fmt.Errorf("perfpredict: no innermost block")
	}
	tr := lower.New(tbl, target, lower.DefaultOptions())
	lw, err := tr.Body(body, loopVars)
	if err != nil {
		return nil, err
	}
	out := map[string]int{}
	for op, n := range lw.Body.Counts() {
		out[op.String()] = n
	}
	return out, nil
}
