package perfpredict

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"perfpredict/internal/kernels"
	"perfpredict/internal/machine"
)

// specVsReferencePairs matches each spec-loaded builtin with the seed
// hand-coded constructor it must reproduce exactly.
func specVsReferencePairs() []struct {
	name      string
	spec, ref *Target
} {
	return []struct {
		name      string
		spec, ref *Target
	}{
		{"POWER1", POWER1(), machine.ReferencePOWER1()},
		{"SuperScalar2", SuperScalar2(), machine.ReferenceSuperScalar2()},
		{"Scalar1", Scalar1(), machine.ReferenceScalar1()},
	}
}

func predictionSignature(p *Prediction) string {
	return fmt.Sprintf("cost=%s|onetime=%s|unknowns=%+v", p.Cost, p.OneTime, p.Unknowns)
}

// TestSpecDifferentialPredictions is the acceptance check for the
// data-driven target descriptions: for every embedded kernel and every
// builtin target, the spec-loaded machine must produce byte-identical
// prediction formulas to the seed constructor.
func TestSpecDifferentialPredictions(t *testing.T) {
	for _, pair := range specVsReferencePairs() {
		for _, k := range kernels.All() {
			fromSpec, specErr := Predict(k.Src, pair.spec)
			fromRef, refErr := Predict(k.Src, pair.ref)
			if (specErr == nil) != (refErr == nil) {
				t.Errorf("%s/%s: error divergence: spec %v, ref %v", pair.name, k.Name, specErr, refErr)
				continue
			}
			if specErr != nil {
				if specErr.Error() != refErr.Error() {
					t.Errorf("%s/%s: different errors: spec %v, ref %v", pair.name, k.Name, specErr, refErr)
				}
				continue
			}
			if got, want := predictionSignature(fromSpec), predictionSignature(fromRef); got != want {
				t.Errorf("%s/%s: prediction diverged:\nspec %s\nref  %s", pair.name, k.Name, got, want)
			}
		}
	}
}

// TestSpecDifferentialAccuracyTables compares the Figure-7-style
// innermost-block accuracy analysis — predicted and simulated cycle
// counts, the op-count baseline, and the critical unit — between
// spec-loaded and reference machines on every kernel.
func TestSpecDifferentialAccuracyTables(t *testing.T) {
	for _, pair := range specVsReferencePairs() {
		for _, k := range kernels.All() {
			fromSpec, specErr := AnalyzeInnermostBlock(k.Src, pair.spec)
			fromRef, refErr := AnalyzeInnermostBlock(k.Src, pair.ref)
			if (specErr == nil) != (refErr == nil) {
				t.Errorf("%s/%s: error divergence: spec %v, ref %v", pair.name, k.Name, specErr, refErr)
				continue
			}
			if specErr != nil {
				if specErr.Error() != refErr.Error() {
					t.Errorf("%s/%s: different errors: spec %v, ref %v", pair.name, k.Name, specErr, refErr)
				}
				continue
			}
			if !reflect.DeepEqual(fromSpec, fromRef) {
				t.Errorf("%s/%s: accuracy report diverged:\nspec %+v\nref  %+v", pair.name, k.Name, fromSpec, fromRef)
			}
		}
	}
}

func TestLoadTargetByNameAndPath(t *testing.T) {
	byName, err := LoadTarget("power1") // case-insensitive registry hit
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byName, machine.ReferencePOWER1()) {
		t.Error("LoadTarget(name) differs from the reference machine")
	}

	// A spec file on disk loads as a custom target.
	spec := machine.SpecOf(machine.ReferencePOWER1())
	spec.Name = "POWER1-disk"
	data, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p1.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	byPath, err := LoadTarget(path)
	if err != nil {
		t.Fatal(err)
	}
	if byPath.Name != "POWER1-disk" {
		t.Errorf("loaded target name = %q, want POWER1-disk", byPath.Name)
	}
	byPath.Name = byName.Name
	if !reflect.DeepEqual(byPath, byName) {
		t.Error("spec file and registry lookup disagree beyond the name")
	}

	// Unknown names fail with the list of valid targets.
	_, err = LoadTarget("PentiumPro")
	if err == nil {
		t.Fatal("unknown target accepted")
	}
	for _, want := range append(TargetNames(), "PentiumPro") {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}

	// Malformed spec files report parse errors, not registry errors.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name": 42}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTarget(bad); err == nil {
		t.Error("malformed spec file accepted")
	}
}

func TestTargetNames(t *testing.T) {
	want := []string{"POWER1", "Scalar1", "SuperScalar2"}
	if got := TargetNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("TargetNames() = %v, want %v", got, want)
	}
}

// Every way a target reference can go wrong maps to a distinct,
// attributable error: unknown names list the registry, unreadable
// paths say so, and file contents fail at the precise layer (JSON
// shape, spec schema, or semantic validation) with the path in the
// message.
func TestLoadTargetErrorTable(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	valid, err := machine.SpecOf(machine.ReferenceScalar1()).Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Parses as a spec but fails validation: drop every unit, so the
	// atomic operations reference units the machine does not have.
	invalid := machine.SpecOf(machine.ReferenceScalar1())
	invalid.Units = map[string]int{}
	invalidJSON, err := invalid.Encode()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		ref  string
		want string // substring of the error
	}{
		{"unknown name, no file", "NoSuchMachine", "unknown machine"},
		{"directory instead of file", dir, "unknown machine"},
		{"empty file", write("empty.json", nil), "machine spec"},
		{"not json", write("garbage.json", []byte("pipes: 3")), "machine spec"},
		{"unknown field", write("typo.json", []byte(`{"pipes": 3}`)), "unknown field"},
		{"trailing document", write("two.json", append(append([]byte{}, valid...), valid...)), "trailing data"},
		{"parses but invalid", write("nounits.json", invalidJSON), "no units"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadTarget(tc.ref)
			if err == nil {
				t.Fatalf("LoadTarget(%q) succeeded; want error", tc.ref)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("LoadTarget(%q) error %q, want substring %q", tc.ref, err, tc.want)
			}
		})
	}
}
