package perfpredict

import (
	"context"

	"perfpredict/internal/explore"
	"perfpredict/internal/machine"
)

// MachineTemplate is a machine description with free parameters —
// pipe-count ranges, a dispatch-width range, alternative op
// expansions — that expands into a canonical lattice of concrete
// machine specs. See internal/machine.SpecTemplate for the JSON
// format; ParseMachineTemplate loads one.
type MachineTemplate = machine.SpecTemplate

// ParseMachineTemplate decodes a machine template from its strict
// JSON form. The result is validated lazily: Explore (or the
// template's own Validate/Expand) reports malformed templates.
func ParseMachineTemplate(data []byte) (*MachineTemplate, error) {
	return machine.ParseTemplate(data)
}

// ExploreKernel is one workload member of a design-space sweep.
type ExploreKernel = explore.Kernel

// ExploreResult is the outcome of a sweep: the Pareto front over
// (hardware budget, per-kernel cost...), the pruned configs with
// dominance witnesses, and the best config for the target.
type ExploreResult = explore.Result

// ExploreCell is one evaluated machine configuration of an
// ExploreResult.
type ExploreCell = explore.Cell

// ExploreOptions tune ExploreCtx. The zero value explores with
// GOMAXPROCS workers, default argument conventions (probabilities
// 0.5, other unknowns 100), no cost target, and a private segment
// cache.
type ExploreOptions struct {
	// Workers bounds the cell-evaluation pool (<= 0 = GOMAXPROCS).
	Workers int
	// Args assigns values to kernel unknowns at evaluation.
	Args map[string]float64
	// Target, when positive, selects the cheapest-budget config whose
	// total cost meets it as ExploreResult.Best.
	Target float64
	// SegCache shares straight-line segment costs across cells and
	// with other predictions; nil uses a private cache.
	SegCache *SegmentCache
	// Progress, when set, is called after each cell evaluation with
	// (cells done, cells total); calls may come from worker
	// goroutines. It observes progress only — results never depend on
	// it.
	Progress func(done, total int)
}

// Explore expands a machine template and prices every kernel on every
// lattice cell, reducing the design space to a Pareto front. Results
// are deterministic: independent of worker count and cache warmth.
func Explore(tpl *MachineTemplate, kernels []ExploreKernel) (*ExploreResult, error) {
	return ExploreCtx(context.Background(), tpl, kernels, ExploreOptions{})
}

// ExploreCtx is Explore under a context with options. Cancellation is
// checked between cell evaluations; a cancelled sweep returns the
// context error rather than a partial (and therefore misleading)
// front.
func ExploreCtx(ctx context.Context, tpl *MachineTemplate, kernels []ExploreKernel, opt ExploreOptions) (*ExploreResult, error) {
	return explore.Run(ctx, tpl, kernels, explore.Options{
		Workers:  opt.Workers,
		Args:     opt.Args,
		Target:   opt.Target,
		SegCache: opt.SegCache,
		Progress: opt.Progress,
	})
}
